//===- bench/BenchUtil.h - Shared helpers for the table harnesses ---------==//
///
/// \file
/// Helpers shared by the benchmark binaries: run a benchmark program
/// under a domain/configuration, print paper-vs-measured rows, and — for
/// the serving-layer harnesses (throughput, service_soak) — the shared
/// request mix, the queue-free capacity baseline, and JSON escaping.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_BENCH_BENCHUTIL_H
#define GAIA_BENCH_BENCHUTIL_H

#include "core/Analyzer.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "programs/PaperData.h"
#include "runtime/AnalysisPool.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gaia {

/// Analyzes \p B with the given options; prints an error and aborts on
/// failure (the bench harness runs on known-good inputs).
inline AnalysisResult runBenchmark(const BenchmarkProgram &B,
                                   AnalyzerOptions Opts = {}) {
  AnalysisResult R = analyzeProgram(B.Source, B.GoalSpec, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", B.Key.c_str(),
                 R.Error.c_str());
    std::abort();
  }
  return R;
}

inline void printHeaderBlock(const char *Table, const char *What) {
  std::printf("\n=== %s: %s ===\n", Table, What);
  std::printf("(paper values from a Sun SPARC-10 and the original "
              "benchmark sources; ours are reconstructions — compare "
              "shapes, not absolutes; see EXPERIMENTS.md)\n\n");
}

/// The distinct (program, goal) queries of the serving workload: each
/// Section 9 program's published goal plus variants specializing the
/// first argument — the repeated-query shape a type-analysis service
/// sees. Shared by bench/throughput.cpp and bench/service_soak.cpp so
/// the queue-free capacity baseline and the soak run the same mix.
inline std::vector<AnalysisJob> serviceQueryMix() {
  std::vector<AnalysisJob> Queries;
  for (const BenchmarkProgram &B : table123Suite()) {
    Queries.push_back({B.Key, B.Source, B.GoalSpec});
    for (const char *Spec : {"list", "int"}) {
      std::string Goal = B.GoalSpec;
      size_t Pos = Goal.find("any");
      if (Pos == std::string::npos)
        continue;
      Goal.replace(Pos, 3, Spec);
      Queries.push_back({B.Key + "#" + Spec, B.Source, Goal});
    }
  }
  return Queries;
}

/// Minimal JSON string escaping for error-message fields (parser
/// messages can carry quotes and backslashes from source excerpts).
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// One queue-free capacity measurement: \p Workers pool threads driving
/// \p St.JobsPerSecond over a pre-warmed tier with no admission queue in
/// front — the raw compute ceiling the service's load multiples are
/// derived from.
struct CapacityPoint {
  uint32_t Workers = 0;
  BatchStats St;
};

/// Measures queue-free batch capacity at each worker count: one untimed
/// settle wave (OS thread placement) then one timed wave per count.
/// \p Verify, when set, receives every timed wave's outcomes for
/// oracle/fingerprint checking.
inline std::vector<CapacityPoint> measureQueueFreeCapacity(
    const std::vector<AnalysisJob> &Batch,
    const std::shared_ptr<const SharedCache> &Cache,
    const std::vector<uint32_t> &WorkerCounts,
    const std::function<void(uint32_t, const std::vector<JobOutcome> &)>
        &Verify = {}) {
  std::vector<CapacityPoint> Points;
  for (uint32_t Workers : WorkerCounts) {
    PoolOptions PO;
    PO.Workers = Workers;
    PO.Shared = Cache;
    AnalysisPool Pool(PO);
    Pool.run(Batch);
    CapacityPoint P;
    P.Workers = Workers;
    std::vector<JobOutcome> Out = Pool.run(Batch, &P.St);
    if (Verify)
      Verify(Workers, Out);
    Points.push_back(std::move(P));
  }
  return Points;
}

} // namespace gaia

#endif // GAIA_BENCH_BENCHUTIL_H
