//===- bench/BenchUtil.h - Shared helpers for the table harnesses ---------==//
///
/// \file
/// Helpers shared by the per-table benchmark binaries: run a benchmark
/// program under a domain/configuration and print paper-vs-measured
/// rows.
///
//===----------------------------------------------------------------------===//

#ifndef GAIA_BENCH_BENCHUTIL_H
#define GAIA_BENCH_BENCHUTIL_H

#include "core/Analyzer.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"
#include "programs/PaperData.h"

#include <cstdio>
#include <string>

namespace gaia {

/// Analyzes \p B with the given options; prints an error and aborts on
/// failure (the bench harness runs on known-good inputs).
inline AnalysisResult runBenchmark(const BenchmarkProgram &B,
                                   AnalyzerOptions Opts = {}) {
  AnalysisResult R = analyzeProgram(B.Source, B.GoalSpec, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "error: %s: %s\n", B.Key.c_str(),
                 R.Error.c_str());
    std::abort();
  }
  return R;
}

inline void printHeaderBlock(const char *Table, const char *What) {
  std::printf("\n=== %s: %s ===\n", Table, What);
  std::printf("(paper values from a Sun SPARC-10 and the original "
              "benchmark sources; ours are reconstructions — compare "
              "shapes, not absolutes; see EXPERIMENTS.md)\n\n");
}

} // namespace gaia

#endif // GAIA_BENCH_BENCHUTIL_H
