//===- bench/widening_ablation.cpp - Widening strategy ablation -----------==//
///
/// \file
/// The ablation DESIGN.md calls out: the paper's widening operator vs
/// the depth-k truncation baseline (the finite-subdomain approach of
/// Bruynooghe & Janssens that Section 7 sets the operator against), and
/// the effect of the conclusion's type-database extension. For each
/// Section 2 example we report analysis time and whether the strategy
/// reaches the paper's (exact) type.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"

#include <benchmark/benchmark.h>

using namespace gaia;

static void printAblation() {
  printHeaderBlock("Widening ablation",
                   "Section 7 operator vs depth-k truncation");
  std::printf("%-16s  %-10s  %-8s  %-10s  %s\n", "example", "strategy",
              "time(s)", "procIters", "first-arg type");
  for (const char *Key : {"nreverse", "process", "nested", "gen", "AR",
                          "AR1"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    AnalysisResult Paper = runBenchmark(*B);
    for (unsigned K : {2u, 4u, 8u}) {
      AnalyzerOptions Opts;
      Opts.Widening = WidenMode::DepthK;
      Opts.DepthK = K;
      AnalysisResult R = runBenchmark(*B, Opts);
      constexpr size_t Arg = 0; // report the first argument's type
      bool Exact =
          R.QuerySucceeds &&
          graphEquals(R.QueryOutput[Arg], Paper.QueryOutput[Arg],
                      *R.Syms);
      std::string Grammar =
          Exact ? "exact"
                : printGrammarInline(R.QueryOutput[Arg], *R.Syms);
      std::printf("%-16s  depth-%-4u  %8.4f  %10llu  %s\n", Key, K,
                  R.Stats.SolveSeconds,
                  static_cast<unsigned long long>(
                      R.Stats.ProcedureIterations),
                  Grammar.c_str());
    }
    constexpr size_t Arg = 0;
    std::printf("%-16s  %-10s  %8.4f  %10llu  %s\n", Key, "paper",
                Paper.Stats.SolveSeconds,
                static_cast<unsigned long long>(
                    Paper.Stats.ProcedureIterations),
                printGrammarInline(Paper.QueryOutput[Arg], *Paper.Syms)
                    .c_str());
    std::fflush(stdout);
  }
  std::printf("\nType-database extension (paper's conclusion): AR1 with "
              "the expression type pre-registered\n");
  {
    const BenchmarkProgram *B = findBenchmark("AR1");
    AnalyzerOptions Opts;
    Opts.TypeDatabase.push_back(
        "T ::= *(T1,T2) | +(T,T1) | cst(Any) | par(T) | var(Any).\n"
        "T1 ::= *(T1,T2) | cst(Any) | par(T) | var(Any).\n"
        "T2 ::= cst(Any) | par(T) | var(Any).");
    AnalysisResult R = runBenchmark(*B, Opts);
    AnalysisResult Plain = runBenchmark(*B);
    std::printf("  with database: %.4fs (%llu database hits), plain: "
                "%.4fs\n\n",
                R.Stats.SolveSeconds,
                static_cast<unsigned long long>(R.WStats.DatabaseHits),
                Plain.Stats.SolveSeconds);
  }
}

static void BM_WidenStrategy(benchmark::State &State,
                             const std::string &Key, WidenMode Mode) {
  const BenchmarkProgram *B = findBenchmark(Key);
  AnalyzerOptions Opts;
  Opts.Widening = Mode;
  for (auto _ : State) {
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, Opts);
    benchmark::DoNotOptimize(R.QuerySucceeds);
  }
}

int main(int argc, char **argv) {
  printAblation();
  for (const char *Key : {"nreverse", "process", "AR1"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Widen/paper/") + Key).c_str(), BM_WidenStrategy,
        std::string(Key), WidenMode::Paper);
    benchmark::RegisterBenchmark(
        (std::string("BM_Widen/depthk/") + Key).c_str(),
        BM_WidenStrategy, std::string(Key), WidenMode::DepthK);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
