//===- bench/widening_ablation.cpp - Widening strategy ablation -----------==//
///
/// \file
/// The ablation DESIGN.md calls out: the paper's widening operator vs
/// the depth-k truncation baseline (the finite-subdomain approach of
/// Bruynooghe & Janssens that Section 7 sets the operator against), and
/// the effect of the conclusion's type-database extension. For each
/// Section 2 example we report analysis time and whether the strategy
/// reaches the paper's (exact) type.
///
/// Since the widening fast-path work this harness also reports the
/// widening hot-loop counters for the widening-heavy Table 3 programs
/// (clash counts, transform rule firings, incremental re-walk skips,
/// pf-set interner hit rates) and — via a counting global `operator new`,
/// the same harness bench/normalize_hot.cpp uses — **allocations per
/// warm widening** on the worst-case graph pairs the PR and RE analyses
/// produce. The tentpole claim is that a warm `widenOf` is
/// allocation-free in steady state (<= 1 alloc/op).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "typegraph/GrammarParser.h"
#include "typegraph/GrammarPrinter.h"
#include "typegraph/GraphOps.h"
#include "typegraph/OpCache.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <new>

//===----------------------------------------------------------------------===//
// Allocation counting (see bench/normalize_hot.cpp). Single-threaded
// benchmarks; a plain counter keeps the hooks cheap.
//===----------------------------------------------------------------------===//

static uint64_t GAllocs = 0;

void *operator new(std::size_t Size) {
  ++GAllocs;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace gaia;

static void printAblation() {
  printHeaderBlock("Widening ablation",
                   "Section 7 operator vs depth-k truncation");
  std::printf("%-16s  %-10s  %-8s  %-10s  %s\n", "example", "strategy",
              "time(s)", "procIters", "first-arg type");
  for (const char *Key : {"nreverse", "process", "nested", "gen", "AR",
                          "AR1"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    AnalysisResult Paper = runBenchmark(*B);
    for (unsigned K : {2u, 4u, 8u}) {
      AnalyzerOptions Opts;
      Opts.Widening = WidenMode::DepthK;
      Opts.DepthK = K;
      AnalysisResult R = runBenchmark(*B, Opts);
      constexpr size_t Arg = 0; // report the first argument's type
      bool Exact =
          R.QuerySucceeds &&
          graphEquals(R.QueryOutput[Arg], Paper.QueryOutput[Arg],
                      *R.Syms);
      std::string Grammar =
          Exact ? "exact"
                : printGrammarInline(R.QueryOutput[Arg], *R.Syms);
      std::printf("%-16s  depth-%-4u  %8.4f  %10llu  %s\n", Key, K,
                  R.Stats.SolveSeconds,
                  static_cast<unsigned long long>(
                      R.Stats.ProcedureIterations),
                  Grammar.c_str());
    }
    constexpr size_t Arg = 0;
    std::printf("%-16s  %-10s  %8.4f  %10llu  %s\n", Key, "paper",
                Paper.Stats.SolveSeconds,
                static_cast<unsigned long long>(
                    Paper.Stats.ProcedureIterations),
                printGrammarInline(Paper.QueryOutput[Arg], *Paper.Syms)
                    .c_str());
    std::fflush(stdout);
  }
  std::printf("\nType-database extension (paper's conclusion): AR1 with "
              "the expression type pre-registered\n");
  {
    const BenchmarkProgram *B = findBenchmark("AR1");
    AnalyzerOptions Opts;
    Opts.TypeDatabase.push_back(
        "T ::= *(T1,T2) | +(T,T1) | cst(Any) | par(T) | var(Any).\n"
        "T1 ::= *(T1,T2) | cst(Any) | par(T) | var(Any).\n"
        "T2 ::= cst(Any) | par(T) | var(Any).");
    AnalysisResult R = runBenchmark(*B, Opts);
    AnalysisResult Plain = runBenchmark(*B);
    std::printf("  with database: %.4fs (%llu database hits), plain: "
                "%.4fs\n\n",
                R.Stats.SolveSeconds,
                static_cast<unsigned long long>(R.WStats.DatabaseHits),
                Plain.Stats.SolveSeconds);
  }
}

/// Widening hot-loop counters for the widening-heavy Table 3 programs:
/// how many correspondence walks ran, how many clashes they found, which
/// transform rules fired, how much the incremental re-walk skipped, and
/// how the pf-set interner behaved.
static void printHotLoopCounters() {
  std::printf("--- widening hot-loop counters (uncapped runs) ---\n");
  std::printf("%-5s %6s %7s %8s %7s %6s %6s %8s %8s\n", "prog", "widen",
              "walks", "clashes", "cycles", "repl", "skips", "pfHit%",
              "pfSets");
  for (const char *Key : {"PR", "RE", "BR", "KA"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    AnalysisResult R = runBenchmark(*B);
    const WideningStats &W = R.WStats;
    double PfHit = 100.0 * R.Stats.pfSetHitRate();
    std::printf("%-5s %6llu %7llu %8llu %7llu %6llu %6llu %7.1f%% %8llu\n",
                Key, (unsigned long long)W.Invocations,
                (unsigned long long)W.ClashWalks,
                (unsigned long long)W.Clashes,
                (unsigned long long)W.CycleIntroductions,
                (unsigned long long)W.Replacements,
                (unsigned long long)W.IncrementalSkips, PfHit,
                (unsigned long long)R.Stats.PfSetMisses);
  }
  std::printf("\n");
}

/// Allocations per warm widening on the deepest graph pairs the PR and
/// RE analyses actually produce. "Warm" is the steady state of the
/// fixpoint engine: the operand pair has been widened once, so the op
/// cache answers from the memo and the only remaining cost is two O(1)
/// intern tag-compares and a copy-on-write value handoff — which must
/// not allocate. This is a real gate: returns false (and the harness
/// exits non-zero, failing the CI step that runs it) when a pair
/// exceeds 1 alloc/op.
static bool printWarmWidenAllocs() {
  bool Ok = true;
  std::printf("--- warm widenOf allocations/op (worst-case pairs) ---\n");
  for (const char *Key : {"PR", "RE"}) {
    const BenchmarkProgram *B = findBenchmark(Key);
    AnalysisResult R = runBenchmark(*B);
    std::vector<TypeGraph> Graphs;
    for (const PredicateSummary &S : R.Summaries) {
      for (const ArgInfo &A : S.Input)
        if (!A.Graph.isBottomGraph())
          Graphs.push_back(A.Graph);
      for (const ArgInfo &A : S.Output)
        if (!A.Graph.isBottomGraph())
          Graphs.push_back(A.Graph);
    }
    std::stable_sort(Graphs.begin(), Graphs.end(),
                     [](const TypeGraph &A, const TypeGraph &B) {
                       return A.sizeMetric() > B.sizeMetric();
                     });
    if (Graphs.size() < 2) {
      std::printf("  %s: not enough graphs harvested\n", Key);
      Ok = false;
      continue;
    }
    OpCache Ops(*R.Syms, NormalizeOptions{});
    WideningOptions WOpts;
    WideningStats WS;
    const TypeGraph &Old = Graphs[1]; // second-deepest as the old iterate
    const TypeGraph &New = Graphs[0]; // deepest as the new one
    TypeGraph First = Ops.widenOf(Old, New, WOpts, &WS); // warm the memo
    benchmark::DoNotOptimize(First.numNodes());
    constexpr int Reps = 1000;
    uint64_t Start = GAllocs;
    for (int I = 0; I != Reps; ++I) {
      TypeGraph W = Ops.widenOf(Old, New, WOpts, &WS);
      benchmark::DoNotOptimize(W.numNodes());
    }
    double PerOp = double(GAllocs - Start) / Reps;
    std::printf("  %s: pair sizes %llu/%llu, warm widenOf: %.3f allocs/op "
                "(%s)\n",
                Key, (unsigned long long)Old.sizeMetric(),
                (unsigned long long)New.sizeMetric(), PerOp,
                PerOp <= 1.0 ? "ok, <= 1" : "EXCEEDS the 1 alloc/op gate");
    Ok = Ok && PerOp <= 1.0;
  }
  std::printf("\n");
  return Ok;
}

static void BM_WidenStrategy(benchmark::State &State,
                             const std::string &Key, WidenMode Mode) {
  const BenchmarkProgram *B = findBenchmark(Key);
  AnalyzerOptions Opts;
  Opts.Widening = Mode;
  for (auto _ : State) {
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec, Opts);
    benchmark::DoNotOptimize(R.QuerySucceeds);
  }
}

int main(int argc, char **argv) {
  printAblation();
  printHotLoopCounters();
  if (!printWarmWidenAllocs())
    return 1; // the steady-state allocation gate failed
  for (const char *Key : {"nreverse", "process", "AR1"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Widen/paper/") + Key).c_str(), BM_WidenStrategy,
        std::string(Key), WidenMode::Paper);
    benchmark::RegisterBenchmark(
        (std::string("BM_Widen/depthk/") + Key).c_str(),
        BM_WidenStrategy, std::string(Key), WidenMode::DepthK);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
