//===- bench/section2_examples.cpp - Section 2 illustration harness -------==//
///
/// \file
/// Regenerates the Section 2 walkthrough: for every illustration example
/// the inferred grammars and the analysis time (the paper reports 0.01s
/// to 0.56s on a SPARC-10), plus google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "typegraph/GrammarPrinter.h"

#include <benchmark/benchmark.h>

using namespace gaia;

// Analysis times the paper quotes in Section 2, keyed by example.
static double paperSeconds(const std::string &Key) {
  if (Key == "nreverse")
    return 0.01;
  if (Key == "process")
    return 0.34;
  if (Key == "process_mutual")
    return 0.08;
  if (Key == "nested")
    return 0.09;
  if (Key == "AR")
    return 0.11;
  if (Key == "AR1")
    return 0.56;
  if (Key == "gen")
    return 0.07;
  if (Key == "tokenizer")
    return 0.42;
  return 0;
}

static void printSection2() {
  printHeaderBlock("Section 2", "functionality of the type system");
  for (const BenchmarkProgram &B : section2Examples()) {
    AnalysisResult R = runBenchmark(B);
    std::printf("--- %s  goal %s\n", B.Key.c_str(), B.GoalSpec.c_str());
    if (!R.QuerySucceeds) {
      std::printf("    the goal cannot succeed\n");
      continue;
    }
    for (size_t I = 0; I != R.QueryOutput.size(); ++I)
      std::printf("    arg %zu: %s\n", I + 1,
                  printGrammarInline(R.QueryOutput[I], *R.Syms).c_str());
    double Paper = paperSeconds(B.Key);
    if (Paper > 0)
      std::printf("    time: %.3fs (paper: %.2fs on a SPARC-10)\n",
                  R.Stats.SolveSeconds, Paper);
    else
      std::printf("    time: %.3fs\n", R.Stats.SolveSeconds);
  }
  std::printf("\n");
}

static void BM_Section2(benchmark::State &State, const std::string &Key) {
  const BenchmarkProgram *B = findBenchmark(Key);
  for (auto _ : State) {
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec);
    benchmark::DoNotOptimize(R.QuerySucceeds);
  }
}

int main(int argc, char **argv) {
  printSection2();
  for (const BenchmarkProgram &B : section2Examples())
    benchmark::RegisterBenchmark(("BM_Section2/" + B.Key).c_str(),
                                 BM_Section2, B.Key);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
