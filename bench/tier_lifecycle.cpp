//===- bench/tier_lifecycle.cpp - Cache-tier lifecycle soak ----------------==//
///
/// \file
/// Soaks the managed tier lifecycle (runtime/TierLifecycle.h): repeated
/// batches of the Section 9 programs x query variants over one worker
/// pool, with a fresh per-generation "churn" program each wave so the
/// tier keeps acquiring entries that go stale one generation later.
/// Between batches the lifecycle promotes hot worker deltas and
/// compacts on cadence — exactly the serving shape the budget machinery
/// targets.
///
/// Reports per-generation jobs/sec, shared-tier hit rate, and the tier
/// byte estimate; the part that gates: every job of every generation is
/// verified bit-identical to a cold sequential run (promotion and
/// compaction must be observationally invisible), and the post-
/// compaction byte curve must plateau instead of growing with the
/// churn (bench/check_bench_regression.py --lifecycle).
///
/// Writes BENCH_tier_lifecycle.json (override with
/// BENCH_TIER_LIFECYCLE_JSON; empty string skips). Generations via
/// GAIA_LIFECYCLE_GENS (default 6, min 3).
///
//===----------------------------------------------------------------------===//

#include "runtime/TierLifecycle.h"

#include "core/Report.h"
#include "programs/Benchmarks.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <sys/resource.h>
#include <vector>

using namespace gaia;

namespace {

long peakRssKb() {
  struct rusage U {};
  getrusage(RUSAGE_SELF, &U);
  return U.ru_maxrss; // KiB on Linux
}

/// Section 9 programs x {published, list, int} first-argument variants —
/// the stable core of every generation's batch.
std::vector<AnalysisJob> baseQueries() {
  std::vector<AnalysisJob> Queries;
  for (const BenchmarkProgram &B : table123Suite()) {
    Queries.push_back({B.Key, B.Source, B.GoalSpec});
    for (const char *Spec : {"list", "int"}) {
      std::string Goal = B.GoalSpec;
      size_t Pos = Goal.find("any");
      if (Pos == std::string::npos)
        continue;
      Goal.replace(Pos, 3, Spec);
      Queries.push_back({B.Key + "#" + Spec, B.Source, Goal});
    }
  }
  return Queries;
}

/// A program unique to generation \p Gen: fresh functor names, so its
/// graphs and op entries share nothing with other generations. Without
/// churn the tier would trivially plateau; with it, only compaction
/// keeps the byte curve flat.
AnalysisJob churnJob(unsigned Gen) {
  std::string G = std::to_string(Gen);
  AnalysisJob J;
  J.Key = "churn#g" + G;
  J.GoalSpec = "p(any)";
  J.Source = "p([]).\n"
             "p([soak_g" + G + "(X)|T]) :- q(X), p(T).\n"
             "q(soak_g" + G + "(a_" + G + ")).\n"
             "q(b_" + G + ").\n";
  return J;
}

struct GenRun {
  unsigned Gen = 0;
  BatchStats St;
  uint64_t TierBytes = 0;
  uint64_t ArenaBytes = 0;
  uint64_t Graphs = 0;
  uint64_t OpResults = 0;
  uint64_t PromotedEntries = 0; ///< cumulative across generations
  bool Compacted = false;       ///< a compaction ran after this batch
  bool Identical = true;
};

} // namespace

int main(int argc, char **argv) {
  (void)argc;
  (void)argv;
  unsigned Gens = 6;
  if (const char *E = std::getenv("GAIA_LIFECYCLE_GENS"))
    Gens = std::max(3u, static_cast<unsigned>(std::strtoul(E, nullptr, 10)));

  std::vector<AnalysisJob> Base = baseQueries();

  // Cold oracle: one sequential run per distinct job (base + every
  // generation's churn program).
  std::map<std::string, std::string> Oracle;
  auto AddOracle = [&](const AnalysisJob &J) {
    AnalysisResult R = analyzeProgram(J.Source, J.GoalSpec);
    if (!R.Ok) {
      std::fprintf(stderr, "error: oracle %s: %s\n", J.Key.c_str(),
                   R.Error.c_str());
      return false;
    }
    Oracle[J.Key + "|" + J.GoalSpec] = analysisFingerprint(R);
    return true;
  };
  for (const AnalysisJob &J : Base)
    if (!AddOracle(J))
      return 1;
  for (unsigned G = 0; G != Gens; ++G)
    if (!AddOracle(churnJob(G)))
      return 1;

  // Initial tier: warm the published goals only; the variants and the
  // churn arrive through the promotion path.
  std::vector<AnalysisJob> Warmup;
  for (const BenchmarkProgram &B : table123Suite())
    Warmup.push_back({B.Key, B.Source, B.GoalSpec});
  std::string Err;
  std::shared_ptr<const SharedCache> Tier0 =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  if (!Tier0) {
    std::fprintf(stderr, "error: shared cache build failed: %s\n",
                 Err.c_str());
    return 1;
  }

  LifecyclePolicy LP;
  LP.PromoteMinHits = 2;
  LP.CompactEvery = 2;
  LP.KeepGens = 1;
  TierLifecycle L(Tier0, LP);

  PoolOptions PO;
  PO.Workers = 4;
  PO.Shared = L.current();
  PO.CollectDeltas = true;
  PO.DeltaMinHits = LP.PromoteMinHits;
  AnalysisPool Pool(PO);

  std::printf("=== cache-tier lifecycle soak ===\n");
  std::printf("generations: %u, jobs/generation: %zu, workers: 4\n",
              Gens, Base.size() + 1);
  std::printf("tier 0: %llu graphs, %llu op results, %llu bytes (est)\n\n",
              static_cast<unsigned long long>(Tier0->stats().Graphs),
              static_cast<unsigned long long>(Tier0->stats().OpResults),
              static_cast<unsigned long long>(Tier0->tierBytes()));
  std::printf("gen  jobs/s  shared%%  tier-KB  graphs  promoted  compacted"
              "  identical\n");

  std::vector<GenRun> Runs;
  bool AllIdentical = true;
  long CompactionStartGen = -1;
  for (unsigned G = 0; G != Gens; ++G) {
    std::vector<AnalysisJob> Batch = Base;
    Batch.push_back(churnJob(G));

    Pool.setShared(L.current());
    GenRun Run;
    Run.Gen = G;
    std::vector<JobOutcome> Out = Pool.run(Batch, &Run.St);
    for (size_t I = 0; I != Out.size(); ++I) {
      const AnalysisJob &J = Batch[I];
      if (analysisFingerprint(Out[I].Result) !=
          Oracle[J.Key + "|" + J.GoalSpec]) {
        std::fprintf(stderr, "MISMATCH: %s (%s) at generation %u\n",
                     J.Key.c_str(), J.GoalSpec.c_str(), G);
        Run.Identical = false;
      }
    }
    AllIdentical = AllIdentical && Run.Identical;

    uint32_t CompactionsBefore = L.stats().Compactions;
    const std::shared_ptr<const SharedCache> &Cur = L.endBatch(Out);
    Run.Compacted = L.stats().Compactions != CompactionsBefore;
    if (Run.Compacted && CompactionStartGen < 0)
      CompactionStartGen = static_cast<long>(G);
    Run.TierBytes = Cur->tierBytes();
    Run.ArenaBytes = Cur->stats().ArenaBytes;
    Run.Graphs = Cur->stats().Graphs;
    Run.OpResults = Cur->stats().OpResults;
    Run.PromotedEntries = L.stats().PromotedEntries;

    std::printf("%3u %7.1f %8.1f %8llu %7llu %9llu %10s %10s\n", G,
                Run.St.JobsPerSecond, 100.0 * Run.St.sharedHitRate(),
                static_cast<unsigned long long>(Run.TierBytes / 1024),
                static_cast<unsigned long long>(Run.Graphs),
                static_cast<unsigned long long>(Run.PromotedEntries),
                Run.Compacted ? "yes" : "no",
                Run.Identical ? "yes" : "NO");
    Runs.push_back(Run);
  }

  double FirstHitRate = Runs.front().St.sharedHitRate();
  double LastHitRate = Runs.back().St.sharedHitRate();
  std::printf("\nshared-hit rate: %.1f%% (gen 0) -> %.1f%% (gen %u); "
              "promotions: %u, compactions: %u, dropped graphs: %llu\n",
              100.0 * FirstHitRate, 100.0 * LastHitRate, Gens - 1,
              L.stats().Promotions, L.stats().Compactions,
              static_cast<unsigned long long>(L.stats().DroppedGraphs));

  const char *JsonPath = std::getenv("BENCH_TIER_LIFECYCLE_JSON");
  if (!JsonPath)
    JsonPath = "BENCH_tier_lifecycle.json";
  if (*JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"generations\": %u,\n"
                 "  \"jobs_per_generation\": %zu,\n"
                 "  \"workers\": 4,\n"
                 "  \"promote_min_hits\": %u,\n"
                 "  \"compact_every\": %u,\n  \"keep_gens\": %u,\n"
                 "  \"compaction_start_generation\": %ld,\n"
                 "  \"promotions\": %u,\n  \"compactions\": %u,\n"
                 "  \"promoted_entries\": %llu,\n"
                 "  \"dropped_graphs\": %llu,\n"
                 "  \"shared_hit_rate_first\": %.4f,\n"
                 "  \"shared_hit_rate_last\": %.4f,\n"
                 "  \"peak_rss_kb\": %ld,\n",
                 Gens, Base.size() + 1, LP.PromoteMinHits, LP.CompactEvery,
                 LP.KeepGens, CompactionStartGen, L.stats().Promotions,
                 L.stats().Compactions,
                 static_cast<unsigned long long>(L.stats().PromotedEntries),
                 static_cast<unsigned long long>(L.stats().DroppedGraphs),
                 FirstHitRate, LastHitRate, peakRssKb());
    std::fprintf(F, "  \"runs\": [\n");
    for (size_t I = 0; I != Runs.size(); ++I) {
      const GenRun &R = Runs[I];
      std::fprintf(F,
                   "    {\"generation\": %u, \"jobs_per_sec\": %.2f, "
                   "\"shared_hit_rate\": %.4f, \"tier_bytes\": %llu, "
                   "\"tier_arena_bytes\": %llu, \"graphs\": %llu, "
                   "\"op_results\": %llu, \"promoted_entries\": %llu, "
                   "\"compacted\": %s, \"identical\": %s}%s\n",
                   R.Gen, R.St.JobsPerSecond, R.St.sharedHitRate(),
                   static_cast<unsigned long long>(R.TierBytes),
                   static_cast<unsigned long long>(R.ArenaBytes),
                   static_cast<unsigned long long>(R.Graphs),
                   static_cast<unsigned long long>(R.OpResults),
                   static_cast<unsigned long long>(R.PromotedEntries),
                   R.Compacted ? "true" : "false",
                   R.Identical ? "true" : "false",
                   I + 1 != Runs.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n  \"identical_all\": %s\n}\n",
                 AllIdentical ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }

  if (!AllIdentical) {
    std::fprintf(stderr, "FAIL: lifecycle results diverged from the cold "
                         "sequential oracle\n");
    return 1;
  }
  return 0;
}
