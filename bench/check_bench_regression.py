#!/usr/bin/env python3
"""Perf-regression gates for the bench snapshots.

Table 3 gate — compares a freshly written BENCH_table3.json against the
committed baseline (bench/BENCH_table3.baseline.json) and fails when

  * total_solve_seconds regresses by more than the tolerance
    (default 30%, CI runners are noisy but not *that* noisy),
  * any single program's solve_seconds regresses by more than the
    per-program tolerance (50%) — a regression confined to one
    widening-heavy program must not hide inside a stable total. Only
    programs whose baseline time clears PER_PROGRAM_FLOOR (5 ms) are
    gated; below that, timing is pure scheduler noise, or
  * any program reports converged: false (a fixpoint loop fell back to
    top — the result is sound but not the analysis' normal output, and
    timing comparisons against it are meaningless).

Throughput gate (--throughput) — compares BENCH_throughput.json against
bench/BENCH_throughput.baseline.json and fails when

  * identical_all is false (a concurrent run diverged from the
    sequential oracle: a correctness bug, not a perf matter),
  * failed_jobs is nonzero (the throughput workload contains only
    well-formed jobs, so any per-job failure — deadline, contained
    exception, parse error — is a bug; first_error is printed for
    the diagnosis),
  * jobs_per_sec_max regresses by more than the tolerance, or
  * the 8-worker run scales below the floor for this machine's core
    count: 3x over 1 worker with >= 8 hardware threads (the batch
    runtime's contract), 1.5x with 4-7 (standard GitHub runners have 4
    vCPUs — a serialization bug shows up as ~1.0x there, so the gate
    must stay live on CI). Below 4 threads the floor is physically
    unreachable and the check is skipped.

  If the throughput baseline file does not exist yet the perf comparison
  is skipped with a note (first run seeds it); the identity check always
  runs.

Per-program RSS gate (inside the table 3 gate) — runs only when BOTH the
current snapshot and the baseline report peak_rss_per_program: true
(the /proc/self/clear_refs watermark reset worked, so the figures are
per-program rather than the monotone process-wide getrusage maximum).
Otherwise the RSS columns are printed as notes and the gate is skipped
with a logged notice — gating monotone numbers would fail on run order,
not on memory use. Gated programs fail at RSS_TOLERANCE above baseline;
programs below RSS_FLOOR_KB are noise and never gated.

Lifecycle gate (--lifecycle) — checks BENCH_tier_lifecycle.json
(bench/tier_lifecycle soak) and fails when

  * identical_all is false (a promoted or compacted tier changed an
    analysis result: tier rotation must be observationally invisible), or
  * the post-compaction tier byte curve does not plateau: once
    compaction has run, every later generation's tier_bytes must stay
    within PLATEAU_TOLERANCE of the first compacted generation's —
    steady-state churn must be reclaimed, not accumulated.

  The lifecycle gate is self-contained (no baseline file): the plateau
  is a property of one soak run, deterministic because the touched-id
  sets are (jobs are deterministic; the union over a batch is
  order-independent).

Service gate (--service) — checks BENCH_service.json (bench/service_soak,
the resident-service overload ramp) and fails when

  * any leg reports unstructured_failures or non_rejected_refusals
    (every job the service does not run must resolve its ticket with
    FailKind::Rejected — refusal is never an exception, never silent),
  * identical_all is false (an admitted, undegraded job's result
    diverged from the sequential oracle) or post_drain_tier_identical
    is false (the drain-time lifecycle rotation changed results),
  * the heaviest non-chaos leg (4x measured capacity) does not shed: an
    overloaded open-loop generator must see shed_rate >= SERVICE_MIN_SHED_4X,
    or its admitted p99 exceeds deadline_ms * (1 + SERVICE_P99_HEADROOM)
    + SERVICE_P99_SLACK_MS (admission control must protect the jobs it
    accepts rather than queue them past their deadline), or
  * the lightest leg (0.5x capacity) sheds more than SERVICE_MAX_SHED_HALF
    (a service that refuses work at half its measured capacity has a
    broken admission path, not an overload problem).

  Chaos legs (chaos: true) are gated structurally only: fault-lengthened
  run times make their latency and shed figures configuration, not
  regression. The service gate is self-contained (no baseline file):
  the load multiples are derived from the same run's measured capacity,
  so the thresholds are machine-relative by construction.

Parallel-solve gate (--parallel) — checks BENCH_parallel.json
(bench/parallel_solve, the SCC-scheduled intra-analysis parallel mode)
and fails when

  * identical_all is false (a parallel solve's semantic fingerprint —
    query grammars, summary grammars/tags, pattern and tuple counts —
    diverged from the sequential oracle: a correctness bug in the
    speculation machinery, never a perf matter), or
  * the 4-solver-thread run on the largest Section 9 program speeds up
    below the floor for this machine's core count: 1.5x over 1 thread
    with >= 8 hardware threads, 1.2x with 4-7 (speculative workers need
    real cores; with only 4 the parent competes with its own workers).
    Below 4 threads the speedup is physically unreachable — speculation
    is pure overhead on the oracle's critical path — and only the
    identity check gates.

  The parallel gate is self-contained (no baseline file): the speedup
  is computed against the same run's 1-thread latency.

Usage:
  check_bench_regression.py [<table3.json> [<table3-baseline.json>]]
      [--throughput <throughput.json> [<throughput-baseline.json>]]
      [--lifecycle <tier_lifecycle.json>]
      [--service <service.json>]
      [--parallel <parallel.json>]
The table3 positional may be omitted when at least one mode flag is
given (the service-soak CI job gates only its own snapshot).
Exit status: 0 ok, 1 regression/non-convergence/divergence, 2 bad invocation.
"""

import json
import os
import sys

TOLERANCE = 0.30
# Keys a snapshot must carry before any comparison runs. Validated up
# front so a harness/schema mismatch reads as "file X is missing key Y"
# (exit 2, configuration error) instead of a bare KeyError traceback
# masquerading as a perf regression.
TABLE3_KEYS = ("programs", "total_solve_seconds")
TABLE3_PROGRAM_KEYS = ("key", "solve_seconds")
THROUGHPUT_KEYS = ("identical_all", "jobs_per_sec_max", "failed_jobs")
# Per-program gate: fail when one program regresses by more than this,
# but only gate programs whose baseline solve time clears the floor
# (timing noise dominates below it).
PER_PROGRAM_TOLERANCE = 0.50
PER_PROGRAM_FLOOR = 0.005  # seconds
# (min hardware threads, required 8-worker-over-1-worker scaling).
SCALING_FLOORS = [(8, 3.0), (4, 1.5)]
# Per-program RSS gate: only live when both snapshots carry real
# per-program watermarks (peak_rss_per_program: true). Allocator noise
# and page-granularity effects dominate small figures, hence the floor.
RSS_TOLERANCE = 0.50
RSS_FLOOR_KB = 2048
# Lifecycle plateau: post-compaction generations may wobble with the
# compaction cadence (entries promoted between compactions) but must not
# trend upward — 25% headroom over the first compacted generation.
PLATEAU_TOLERANCE = 0.25
LIFECYCLE_KEYS = ("identical_all", "runs", "compaction_start_generation")
# Service soak: the 4x leg must shed at least this fraction (an
# open-loop generator at 4x measured capacity leaves ~3/4 of the offered
# load unservable; 20% is far below that but far above noise), the 0.5x
# leg at most this fraction, and admitted p99 on non-chaos legs must
# stay within deadline * (1 + headroom) + slack (the end-to-end deadline
# bounds queue wait; the slack absorbs the final job's run time and
# scheduler jitter on CI runners).
SERVICE_MIN_SHED_4X = 0.20
SERVICE_MAX_SHED_HALF = 0.10
SERVICE_P99_HEADROOM = 0.25
SERVICE_P99_SLACK_MS = 20.0
SERVICE_KEYS = ("deadline_ms", "capacity", "legs", "identical_all",
                "post_drain_tier_identical")
SERVICE_LEG_KEYS = ("multiple", "chaos", "submitted", "shed_rate", "p99_ms",
                    "unstructured_failures", "non_rejected_refusals")
# Parallel solve: (min hardware threads, required 4-thread-over-1-thread
# speedup on the largest program). Lower floors than the throughput
# gate's — inside one analysis the sequential parent is the critical
# path and speculation can only shave the cold tail, not parallelize
# the fixpoint wholesale.
PARALLEL_FLOORS = [(8, 1.5), (4, 1.2)]
PARALLEL_KEYS = ("identical_all", "speedup_4t_largest", "largest_key",
                 "hardware_concurrency", "programs")


def fail_config(msg):
    """Configuration/schema problem: not a regression, exit 2."""
    print(f"ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def load_snapshot(path, required_keys, label):
    """Loads a bench snapshot and verifies the schema up front."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        fail_config(f"cannot read {label} '{path}': {e}")
    except json.JSONDecodeError as e:
        fail_config(f"{label} '{path}' is not valid JSON: {e}")
    if not isinstance(data, dict):
        fail_config(
            f"{label} '{path}': expected a JSON object, got "
            f"{type(data).__name__}"
        )
    missing = [k for k in required_keys if k not in data]
    if missing:
        fail_config(
            f"{label} '{path}' is missing required key(s): "
            f"{', '.join(missing)} — was it written by the matching bench "
            f"harness run with --json?"
        )
    return data


def validate_programs(data, path, label):
    progs = data["programs"]
    if not isinstance(progs, list) or not progs:
        fail_config(f"{label} '{path}': 'programs' must be a non-empty list")
    for i, prog in enumerate(progs):
        if not isinstance(prog, dict):
            fail_config(
                f"{label} '{path}': programs[{i}] is not an object"
            )
        missing = [k for k in TABLE3_PROGRAM_KEYS if k not in prog]
        if missing:
            fail_config(
                f"{label} '{path}': programs[{i}] is missing "
                f"{', '.join(missing)}"
            )


def check_table3(current_path, baseline_path):
    current = load_snapshot(current_path, TABLE3_KEYS, "table3 snapshot")
    baseline = load_snapshot(baseline_path, TABLE3_KEYS, "table3 baseline")
    validate_programs(current, current_path, "table3 snapshot")
    validate_programs(baseline, baseline_path, "table3 baseline")

    failed = False

    for prog in current["programs"]:
        if not prog.get("converged", True):
            print(f"FAIL: {prog['key']} did not converge")
            failed = True

    cur = current["total_solve_seconds"]
    base = baseline["total_solve_seconds"]
    limit = base * (1.0 + TOLERANCE)
    verdict = "ok" if cur <= limit else "REGRESSION"
    print(
        f"total_solve_seconds: current {cur:.3f}s vs baseline {base:.3f}s "
        f"(limit {limit:.3f}s at +{TOLERANCE:.0%}) -> {verdict}"
    )
    if cur > limit:
        failed = True

    # Per-program RSS is gated only when both runs produced true
    # per-program watermarks; the getrusage fallback is the monotone
    # process-wide maximum, where a "regression" is an artifact of run
    # order, not of memory use.
    rss_gated = current.get("peak_rss_per_program", False) and baseline.get(
        "peak_rss_per_program", False
    )
    if not rss_gated:
        print(
            "per-program RSS not gated: peak_rss_per_program is false in "
            "the snapshot or the baseline (watermark reset unavailable; "
            "figures are the monotone getrusage maximum)"
        )

    # Per-program deltas. Programs above the noise floor are gated at
    # PER_PROGRAM_TOLERANCE so a regression confined to one program
    # (e.g. the widening-heavy PR/RE) cannot hide inside the total.
    base_by_key = {p["key"]: p for p in baseline["programs"]}
    for prog in current["programs"]:
        b = base_by_key.get(prog["key"])
        if b is None:
            continue
        delta = prog["solve_seconds"] - b["solve_seconds"]
        rss = prog.get("peak_rss_kb")
        rss_note = f"  rss {rss} KiB" if rss is not None else ""
        gated = b["solve_seconds"] >= PER_PROGRAM_FLOOR
        limit = b["solve_seconds"] * (1.0 + PER_PROGRAM_TOLERANCE)
        if not gated:
            verdict = "(not gated: below noise floor)"
        elif prog["solve_seconds"] <= limit:
            verdict = "ok"
        else:
            verdict = f"REGRESSION (limit {limit:.4f}s at +{PER_PROGRAM_TOLERANCE:.0%})"
            failed = True
        if rss_gated and rss is not None and b.get("peak_rss_kb") is not None:
            rss_base = b["peak_rss_kb"]
            rss_limit = rss_base * (1.0 + RSS_TOLERANCE)
            if rss_base < RSS_FLOOR_KB:
                pass  # below the noise floor: note only
            elif rss > rss_limit:
                verdict += (
                    f"  RSS REGRESSION ({rss} KiB vs {rss_base} KiB, "
                    f"limit {rss_limit:.0f} at +{RSS_TOLERANCE:.0%})"
                )
                failed = True
        print(
            f"  {prog['key']:4s} {b['solve_seconds']:8.4f}s -> "
            f"{prog['solve_seconds']:8.4f}s ({delta:+.4f}s){rss_note}  {verdict}"
        )

    return failed


def check_throughput(current_path, baseline_path):
    current = load_snapshot(
        current_path, THROUGHPUT_KEYS, "throughput snapshot"
    )

    failed = False

    if not current.get("identical_all", False):
        print("FAIL: concurrent batch results diverged from the sequential oracle")
        failed = True

    failed_jobs = current["failed_jobs"]
    if failed_jobs:
        first = current.get("first_error", "")
        print(
            f"FAIL: {failed_jobs} job(s) failed in the throughput batch"
            + (f" — first error: {first}" if first else "")
        )
        failed = True
    else:
        print("failed_jobs: 0 -> ok")

    hw = current.get("hardware_concurrency", 0)
    scaling = current.get("scaling_8w_over_1w", 0.0)
    floor = next((f for min_hw, f in SCALING_FLOORS if hw >= min_hw), None)
    if floor is not None:
        verdict = "ok" if scaling >= floor else "REGRESSION"
        print(
            f"throughput scaling: 8w/1w {scaling:.2f}x on {hw} hardware "
            f"threads (floor {floor:.1f}x) -> {verdict}"
        )
        if scaling < floor:
            failed = True
    else:
        print(
            f"throughput scaling: 8w/1w {scaling:.2f}x — not gated "
            f"({hw} hardware threads < {SCALING_FLOORS[-1][0]})"
        )

    if not os.path.exists(baseline_path):
        print(
            f"throughput baseline {baseline_path} not found; skipping the "
            f"jobs/sec comparison (seed it from this run's snapshot)"
        )
        return failed

    baseline = load_snapshot(
        baseline_path, ("jobs_per_sec_max",), "throughput baseline"
    )
    cur = current["jobs_per_sec_max"]
    base = baseline["jobs_per_sec_max"]
    limit = base * (1.0 - TOLERANCE)
    verdict = "ok" if cur >= limit else "REGRESSION"
    print(
        f"jobs_per_sec_max: current {cur:.1f} vs baseline {base:.1f} "
        f"(limit {limit:.1f} at -{TOLERANCE:.0%}) -> {verdict}"
    )
    if cur < limit:
        failed = True
    return failed


def check_lifecycle(path):
    current = load_snapshot(path, LIFECYCLE_KEYS, "lifecycle snapshot")

    failed = False

    if not current.get("identical_all", False):
        print(
            "FAIL: a promoted or compacted tier changed an analysis result "
            "(tier rotation must be observationally invisible)"
        )
        failed = True

    runs = current["runs"]
    if not isinstance(runs, list) or not runs:
        fail_config(f"lifecycle snapshot '{path}': 'runs' must be a non-empty list")
    for i, run in enumerate(runs):
        if not isinstance(run, dict) or "tier_bytes" not in run:
            fail_config(
                f"lifecycle snapshot '{path}': runs[{i}] is missing tier_bytes"
            )

    start = current["compaction_start_generation"]
    if not isinstance(start, int) or start < 0 or start >= len(runs):
        print(
            f"lifecycle plateau not gated: no compaction ran "
            f"(compaction_start_generation = {start})"
        )
        return failed

    # Plateau: once compaction is live, the byte curve may wobble with
    # the cadence but must not trend upward — steady-state churn has to
    # be reclaimed.
    anchor = runs[start]["tier_bytes"]
    limit = anchor * (1.0 + PLATEAU_TOLERANCE)
    worst = max(r["tier_bytes"] for r in runs[start:])
    verdict = "ok" if worst <= limit else "MEMORY GROWTH"
    print(
        f"lifecycle plateau: tier_bytes {anchor} at generation {start}, "
        f"worst {worst} after (limit {limit:.0f} at +{PLATEAU_TOLERANCE:.0%}) "
        f"-> {verdict}"
    )
    if worst > limit:
        failed = True
    return failed


def check_service(path):
    current = load_snapshot(path, SERVICE_KEYS, "service snapshot")

    failed = False

    legs = current["legs"]
    if not isinstance(legs, list) or not legs:
        fail_config(f"service snapshot '{path}': 'legs' must be a non-empty list")
    for i, leg in enumerate(legs):
        if not isinstance(leg, dict):
            fail_config(f"service snapshot '{path}': legs[{i}] is not an object")
        missing = [k for k in SERVICE_LEG_KEYS if k not in leg]
        if missing:
            fail_config(
                f"service snapshot '{path}': legs[{i}] is missing "
                f"{', '.join(missing)}"
            )

    if not current.get("identical_all", False):
        print(
            "FAIL: an admitted, undegraded job's result diverged from the "
            "sequential oracle"
        )
        failed = True
    if not current.get("post_drain_tier_identical", False):
        print(
            "FAIL: the post-drain promoted tier changed an analysis result "
            "(lifecycle rotation must be observationally invisible)"
        )
        failed = True

    deadline = current["deadline_ms"]
    p99_limit = deadline * (1.0 + SERVICE_P99_HEADROOM) + SERVICE_P99_SLACK_MS

    for leg in legs:
        mult = leg["multiple"]
        chaos = leg.get("chaos", False)
        tag = f"{mult:.1f}x" + (" (chaos)" if chaos else "")
        unstructured = leg["unstructured_failures"]
        bad_rejects = leg["non_rejected_refusals"]
        if unstructured:
            print(
                f"FAIL: {tag} leg: {unstructured} job(s) failed without a "
                f"structured FailKind"
            )
            failed = True
        if bad_rejects:
            print(
                f"FAIL: {tag} leg: {bad_rejects} refused job(s) resolved "
                f"without FailKind::Rejected"
            )
            failed = True

        shed = leg["shed_rate"]
        p99 = leg["p99_ms"]
        notes = []
        if chaos:
            notes.append("latency/shed not gated (chaos leg)")
        else:
            if p99 > p99_limit:
                notes.append(
                    f"P99 REGRESSION ({p99:.1f}ms > limit {p99_limit:.1f}ms "
                    f"for a {deadline}ms deadline)"
                )
                failed = True
            if mult >= 4.0 and shed < SERVICE_MIN_SHED_4X:
                notes.append(
                    f"SHED TOO LOW ({shed:.1%} < {SERVICE_MIN_SHED_4X:.0%} "
                    f"at {mult:.0f}x capacity — overload is not shedding)"
                )
                failed = True
            if mult <= 0.5 and shed > SERVICE_MAX_SHED_HALF:
                notes.append(
                    f"SHED TOO HIGH ({shed:.1%} > {SERVICE_MAX_SHED_HALF:.0%} "
                    f"at {mult:.1f}x capacity — admission is refusing "
                    f"servable work)"
                )
                failed = True
        if not notes:
            notes.append("ok")
        print(
            f"  service {tag:12s} submitted {leg['submitted']:>7} "
            f"shed {shed:6.1%}  p99 {p99:8.1f}ms  {'; '.join(notes)}"
        )

    return failed


def check_parallel(path):
    current = load_snapshot(path, PARALLEL_KEYS, "parallel snapshot")

    failed = False

    if not current.get("identical_all", False):
        print(
            "FAIL: a parallel solve diverged from the sequential oracle's "
            "semantic fingerprint (grammars/tags/pattern counts must be "
            "bit-identical at every SolverThreads setting)"
        )
        failed = True
    else:
        print("parallel identity (all programs, all thread counts): ok")

    hw = current["hardware_concurrency"]
    speedup = current["speedup_4t_largest"]
    key = current["largest_key"]
    floor = next((f for min_hw, f in PARALLEL_FLOORS if hw >= min_hw), None)
    if floor is not None:
        verdict = "ok" if speedup >= floor else "REGRESSION"
        print(
            f"parallel speedup: 4t/1t {speedup:.2f}x on {key} with {hw} "
            f"hardware threads (floor {floor:.1f}x) -> {verdict}"
        )
        if speedup < floor:
            failed = True
    else:
        print(
            f"parallel speedup: 4t/1t {speedup:.2f}x on {key} — not gated "
            f"({hw} hardware threads < {PARALLEL_FLOORS[-1][0]})"
        )
    return failed


def main(argv):
    args = argv[1:]
    tp_current = tp_baseline = None
    lc_current = None
    sv_current = None
    pl_current = None
    if "--parallel" in args:
        i = args.index("--parallel")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        pl_current = args[i + 1]
        args = args[:i] + args[i + 2 :]
    if "--service" in args:
        i = args.index("--service")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        sv_current = args[i + 1]
        args = args[:i] + args[i + 2 :]
    if "--lifecycle" in args:
        i = args.index("--lifecycle")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        lc_current = args[i + 1]
        args = args[:i] + args[i + 2 :]
    if "--throughput" in args:
        i = args.index("--throughput")
        tail = args[i + 1 :]
        if not tail:
            print(__doc__, file=sys.stderr)
            return 2
        tp_current = tail[0]
        tp_baseline = (
            tail[1] if len(tail) > 1 else "bench/BENCH_throughput.baseline.json"
        )
        args = args[:i]

    any_mode = tp_current is not None or lc_current is not None \
        or sv_current is not None or pl_current is not None
    if len(args) > 2 or (not args and not any_mode):
        print(__doc__, file=sys.stderr)
        return 2

    failed = False
    if args:
        table3_baseline = (
            args[1] if len(args) == 2 else "bench/BENCH_table3.baseline.json"
        )
        failed = check_table3(args[0], table3_baseline)
    if tp_current is not None:
        failed = check_throughput(tp_current, tp_baseline) or failed
    if lc_current is not None:
        failed = check_lifecycle(lc_current) or failed
    if sv_current is not None:
        failed = check_service(sv_current) or failed
    if pl_current is not None:
        failed = check_parallel(pl_current) or failed

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
