#!/usr/bin/env python3
"""Perf-regression gate for the Table 3 bench snapshot.

Compares a freshly written BENCH_table3.json against the committed
baseline (bench/BENCH_table3.baseline.json) and fails when

  * total_solve_seconds regresses by more than the tolerance
    (default 30%, CI runners are noisy but not *that* noisy), or
  * any program reports converged: false (a fixpoint loop fell back to
    top — the result is sound but not the analysis' normal output, and
    timing comparisons against it are meaningless).

Usage: check_bench_regression.py <current.json> [<baseline.json>]
Exit status: 0 ok, 1 regression/non-convergence, 2 bad invocation.
"""

import json
import sys

TOLERANCE = 0.30


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = argv[1]
    baseline_path = argv[2] if len(argv) == 3 else "bench/BENCH_table3.baseline.json"

    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failed = False

    for prog in current["programs"]:
        if not prog.get("converged", True):
            print(f"FAIL: {prog['key']} did not converge")
            failed = True

    cur = current["total_solve_seconds"]
    base = baseline["total_solve_seconds"]
    limit = base * (1.0 + TOLERANCE)
    verdict = "ok" if cur <= limit else "REGRESSION"
    print(
        f"total_solve_seconds: current {cur:.3f}s vs baseline {base:.3f}s "
        f"(limit {limit:.3f}s at +{TOLERANCE:.0%}) -> {verdict}"
    )
    if cur > limit:
        failed = True

    # Informational per-program deltas (not gated: single-program noise
    # on shared runners is too high; the sum is the stable signal).
    base_by_key = {p["key"]: p for p in baseline["programs"]}
    for prog in current["programs"]:
        b = base_by_key.get(prog["key"])
        if b is None:
            continue
        delta = prog["solve_seconds"] - b["solve_seconds"]
        print(
            f"  {prog['key']:4s} {b['solve_seconds']:8.4f}s -> "
            f"{prog['solve_seconds']:8.4f}s ({delta:+.4f}s)"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
