//===- bench/table2_recursion.cpp - Reproduce Table 2 ---------------------==//
///
/// \file
/// Table 2: the syntactic form of the programs — tail recursive, locally
/// recursive, mutually recursive and non-recursive procedure counts —
/// printed next to the paper's values, plus timings of the call-graph /
/// SCC machinery.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gaia;

static void printTable2() {
  printHeaderBlock("Table 2", "syntactic form of the programs");
  std::printf("%-4s | %s\n", "", recursionTableHeader().c_str());
  for (const BenchmarkProgram &B : table123Suite()) {
    SymbolTable Syms;
    std::string Err;
    std::optional<Program> Prog = Program::parse(B.Source, Syms, &Err);
    if (!Prog) {
      std::printf("%s: parse error: %s\n", B.Key.c_str(), Err.c_str());
      continue;
    }
    RecursionMetrics M = classifyRecursion(*Prog, Syms);
    std::printf("ours | %s\n", formatRecursionRow(B.Key, M).c_str());
    if (const PaperTable2Row *P = paperTable2(B.Key)) {
      RecursionMetrics PM;
      PM.TailRecursive = P->Tail;
      PM.LocallyRecursive = P->Local;
      PM.MutuallyRecursive = P->Mutual;
      PM.NonRecursive = P->NonRec;
      std::printf("papr | %s\n", formatRecursionRow(B.Key, PM).c_str());
    }
  }
  std::printf("\n");
}

static void BM_Classify(benchmark::State &State, const std::string &Key) {
  const BenchmarkProgram *B = findBenchmark(Key);
  SymbolTable Syms;
  std::string Err;
  std::optional<Program> Prog = Program::parse(B->Source, Syms, &Err);
  for (auto _ : State) {
    RecursionMetrics M = classifyRecursion(*Prog, Syms);
    benchmark::DoNotOptimize(M.TailRecursive);
  }
}

int main(int argc, char **argv) {
  printTable2();
  for (const BenchmarkProgram &B : table123Suite())
    benchmark::RegisterBenchmark(("BM_Classify/" + B.Key).c_str(),
                                 BM_Classify, B.Key);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
