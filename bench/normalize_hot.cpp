//===- bench/normalize_hot.cpp - Normalization hot-path microbenchmarks ---==//
///
/// \file
/// google-benchmark microbenchmarks for the type-graph hot path:
/// `normalizeGraph`, `graphUnion` and `graphIntersect` on the deepest
/// graphs the PR and RE analyses actually produce (these two programs
/// dominate Table 3's uncapped solve time), plus the certified-copy fast
/// path and graph copying itself.
///
/// Besides wall time, every benchmark reports **heap allocations per
/// operation** via a counting global `operator new` — the tentpole claim
/// of the inline-successor + scratch-buffer work is that the per-op
/// allocation count collapses, and this harness is where that is
/// measured rather than asserted.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/GraphInterner.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Normalize.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <new>

//===----------------------------------------------------------------------===//
// Allocation counting. Single-threaded benchmarks; a plain counter is
// fine and keeps the hooks cheap.
//===----------------------------------------------------------------------===//

static uint64_t GAllocs = 0;

void *operator new(std::size_t Size) {
  ++GAllocs;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace gaia;

namespace {

/// The harvested corpus: the deepest (largest by the paper's size
/// metric) input/output graphs of one program's analysis, plus the
/// symbol table they refer to.
struct Corpus {
  std::shared_ptr<SymbolTable> Syms;
  std::vector<TypeGraph> Graphs; ///< sorted by descending sizeMetric
};

Corpus harvest(const char *Key) {
  const BenchmarkProgram *B = findBenchmark(Key);
  if (!B) {
    std::fprintf(stderr, "error: unknown benchmark %s\n", Key);
    std::abort();
  }
  AnalysisResult R = runBenchmark(*B);
  Corpus C;
  C.Syms = R.Syms;
  for (const PredicateSummary &S : R.Summaries) {
    for (const ArgInfo &A : S.Input)
      if (!A.Graph.isBottomGraph())
        C.Graphs.push_back(A.Graph);
    for (const ArgInfo &A : S.Output)
      if (!A.Graph.isBottomGraph())
        C.Graphs.push_back(A.Graph);
  }
  std::stable_sort(C.Graphs.begin(), C.Graphs.end(),
                   [](const TypeGraph &A, const TypeGraph &B) {
                     return A.sizeMetric() > B.sizeMetric();
                   });
  if (C.Graphs.empty()) {
    std::fprintf(stderr, "error: %s analysis produced no graphs\n", Key);
    std::abort();
  }
  return C;
}

Corpus &corpusPR() {
  static Corpus C = harvest("PR");
  return C;
}
Corpus &corpusRE() {
  static Corpus C = harvest("RE");
  return C;
}

/// Strips the normalization certificate (and the other derived caches)
/// without changing structure, so the full pipeline runs instead of the
/// certified-copy fast path.
TypeGraph uncertified(const TypeGraph &G) { return G.compact(); }

void reportAllocs(benchmark::State &State, uint64_t Start) {
  State.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(GAllocs - Start), benchmark::Counter::kAvgIterations);
}

void BM_NormalizeDeep(benchmark::State &State, Corpus &(*Get)()) {
  Corpus &C = Get();
  TypeGraph Raw = uncertified(C.Graphs.front());
  NormalizeScratch Scratch;
  uint64_t Start = GAllocs;
  for (auto _ : State) {
    TypeGraph N = normalizeGraph(Raw, *C.Syms, {}, &Scratch);
    benchmark::DoNotOptimize(N.numNodes());
  }
  reportAllocs(State, Start);
}

void BM_NormalizeCertified(benchmark::State &State, Corpus &(*Get)()) {
  Corpus &C = Get();
  NormalizeScratch Scratch;
  TypeGraph Certified = normalizeGraph(C.Graphs.front(), *C.Syms, {}, &Scratch);
  uint64_t Start = GAllocs;
  for (auto _ : State) {
    TypeGraph N = normalizeGraph(Certified, *C.Syms, {}, &Scratch);
    benchmark::DoNotOptimize(N.numNodes());
  }
  reportAllocs(State, Start);
}

void BM_GraphUnion(benchmark::State &State, Corpus &(*Get)()) {
  Corpus &C = Get();
  const TypeGraph &A = C.Graphs.front();
  const TypeGraph &B = C.Graphs.size() > 1 ? C.Graphs[1] : C.Graphs[0];
  NormalizeScratch Scratch;
  uint64_t Start = GAllocs;
  for (auto _ : State) {
    TypeGraph U = graphUnion(A, B, *C.Syms, {}, &Scratch);
    benchmark::DoNotOptimize(U.numNodes());
  }
  reportAllocs(State, Start);
}

void BM_GraphIntersect(benchmark::State &State, Corpus &(*Get)()) {
  Corpus &C = Get();
  const TypeGraph &A = C.Graphs.front();
  const TypeGraph &B = C.Graphs.size() > 1 ? C.Graphs[1] : C.Graphs[0];
  NormalizeScratch Scratch;
  uint64_t Start = GAllocs;
  for (auto _ : State) {
    TypeGraph I = graphIntersect(A, B, *C.Syms, {}, &Scratch);
    benchmark::DoNotOptimize(I.numNodes());
  }
  reportAllocs(State, Start);
}

void BM_GraphCopy(benchmark::State &State, Corpus &(*Get)()) {
  Corpus &C = Get();
  const TypeGraph &A = C.Graphs.front();
  uint64_t Start = GAllocs;
  for (auto _ : State) {
    TypeGraph Copy = A;
    benchmark::DoNotOptimize(Copy.numNodes());
  }
  reportAllocs(State, Start);
}

void BM_StructuralHashCold(benchmark::State &State, Corpus &(*Get)()) {
  Corpus &C = Get();
  const TypeGraph &A = C.Graphs.front();
  uint64_t Start = GAllocs;
  for (auto _ : State) {
    // compact() strips the cached signature, so this measures the full
    // BFS hash; the warm path is a member load.
    TypeGraph Cold = uncertified(A);
    benchmark::DoNotOptimize(structuralHash(Cold));
  }
  reportAllocs(State, Start);
}

void registerAll(const char *Tag, Corpus &(*Get)()) {
  auto Reg = [&](const char *Name, void (*Fn)(benchmark::State &,
                                              Corpus &(*)())) {
    benchmark::RegisterBenchmark(
        (std::string(Name) + "/" + Tag).c_str(),
        [Fn, Get](benchmark::State &S) { Fn(S, Get); });
  };
  Reg("BM_NormalizeDeep", BM_NormalizeDeep);
  Reg("BM_NormalizeCertified", BM_NormalizeCertified);
  Reg("BM_GraphUnion", BM_GraphUnion);
  Reg("BM_GraphIntersect", BM_GraphIntersect);
  Reg("BM_GraphCopy", BM_GraphCopy);
  Reg("BM_StructuralHashCold", BM_StructuralHashCold);
}

} // namespace

int main(int argc, char **argv) {
  // Harvest before benchmarking so the analyses' allocations do not
  // pollute the per-op counters, and print the corpus shape once.
  Corpus &PR = corpusPR();
  Corpus &RE = corpusRE();
  std::printf("normalize_hot corpus: PR %zu graphs (deepest size %llu), "
              "RE %zu graphs (deepest size %llu)\n",
              PR.Graphs.size(),
              static_cast<unsigned long long>(PR.Graphs.front().sizeMetric()),
              RE.Graphs.size(),
              static_cast<unsigned long long>(RE.Graphs.front().sizeMetric()));
  registerAll("PR", corpusPR);
  registerAll("RE", corpusRE);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
