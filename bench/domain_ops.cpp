//===- bench/domain_ops.cpp - Type-graph operation ablations --------------==//
///
/// \file
/// Micro-benchmarks and ablations for the design choices DESIGN.md calls
/// out:
///   - scaling of inclusion / union / intersection / widening with graph
///     size (the paper's claim is that the widening keeps graphs, and
///     hence these costs, small);
///   - the collapsing union of the replacement rule vs the exact union
///     (the growth-avoiding variant of Section 7.2.2);
///   - the or-degree cap's effect on operation cost (Table 3's (5)/(2));
///   - widening cost on the worked examples of Section 7.
///
//===----------------------------------------------------------------------===//

#include "typegraph/GrammarParser.h"
#include "typegraph/GraphOps.h"
#include "typegraph/Widening.h"

#include <benchmark/benchmark.h>

using namespace gaia;

namespace {

/// Builds a depth-D "unrolled list of tokens" graph: the kind of finite
/// approximation the fixpoint feeds the widening before a cycle forms.
TypeGraph unrolledList(SymbolTable &Syms, unsigned Depth,
                       unsigned Alphabet) {
  TypeGraph G;
  NodeId Tail = G.addOr({G.addFunc(Syms.nilFunctor(), {})});
  for (unsigned D = 0; D != Depth; ++D) {
    std::vector<NodeId> ElemAlts;
    for (unsigned A = 0; A != Alphabet; ++A) {
      NodeId Arg = G.addOr({G.addAny()});
      ElemAlts.push_back(
          G.addFunc(Syms.functor("f" + std::to_string(A), 1), {Arg}));
    }
    NodeId Elem = G.addOr(std::move(ElemAlts));
    NodeId Cons = G.addFunc(Syms.consFunctor(), {Elem, Tail});
    NodeId Nil = G.addFunc(Syms.nilFunctor(), {});
    Tail = G.addOr({Nil, Cons});
  }
  G.setRoot(Tail);
  return normalizeGraph(G, Syms);
}

} // namespace

static void BM_Inclusion(benchmark::State &State) {
  SymbolTable Syms;
  unsigned Depth = static_cast<unsigned>(State.range(0));
  TypeGraph A = unrolledList(Syms, Depth, 3);
  TypeGraph B = unrolledList(Syms, Depth + 1, 3);
  for (auto _ : State)
    benchmark::DoNotOptimize(graphIncludes(B, A, Syms));
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_Inclusion)->RangeMultiplier(2)->Range(2, 32)->Complexity();

static void BM_Union(benchmark::State &State) {
  SymbolTable Syms;
  unsigned Depth = static_cast<unsigned>(State.range(0));
  TypeGraph A = unrolledList(Syms, Depth, 3);
  TypeGraph B = unrolledList(Syms, Depth, 4);
  for (auto _ : State) {
    TypeGraph U = graphUnion(A, B, Syms);
    benchmark::DoNotOptimize(U.numNodes());
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_Union)->RangeMultiplier(2)->Range(2, 32)->Complexity();

static void BM_Intersect(benchmark::State &State) {
  SymbolTable Syms;
  unsigned Depth = static_cast<unsigned>(State.range(0));
  TypeGraph A = unrolledList(Syms, Depth, 3);
  TypeGraph B = unrolledList(Syms, Depth + 2, 3);
  for (auto _ : State) {
    TypeGraph M = graphIntersect(A, B, Syms);
    benchmark::DoNotOptimize(M.numNodes());
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_Intersect)->RangeMultiplier(2)->Range(2, 32)->Complexity();

static void BM_Widen(benchmark::State &State) {
  SymbolTable Syms;
  unsigned Depth = static_cast<unsigned>(State.range(0));
  TypeGraph A = unrolledList(Syms, Depth, 3);
  TypeGraph B = unrolledList(Syms, Depth + 1, 3);
  for (auto _ : State) {
    TypeGraph W = graphWiden(A, B, Syms);
    benchmark::DoNotOptimize(W.numNodes());
  }
  State.SetComplexityN(Depth);
}
BENCHMARK(BM_Widen)->RangeMultiplier(2)->Range(2, 32)->Complexity();

/// The headline property: the widened graph stays SMALL regardless of
/// how deep the iterates grow (reported as a counter, not a timing).
static void BM_WidenResultSize(benchmark::State &State) {
  SymbolTable Syms;
  unsigned Depth = static_cast<unsigned>(State.range(0));
  TypeGraph A = unrolledList(Syms, Depth, 3);
  TypeGraph B = unrolledList(Syms, Depth + 1, 3);
  uint64_t Size = 0;
  for (auto _ : State) {
    TypeGraph W = graphWiden(A, B, Syms);
    Size = W.sizeMetric();
    benchmark::DoNotOptimize(Size);
  }
  State.counters["input_size"] = static_cast<double>(B.sizeMetric());
  State.counters["widened_size"] = static_cast<double>(Size);
}
BENCHMARK(BM_WidenResultSize)->RangeMultiplier(2)->Range(2, 32);

static void BM_OrCapUnion(benchmark::State &State) {
  SymbolTable Syms;
  // Wide disjunctions: or-cap collapses them to Any (cheaper ops).
  unsigned Cap = static_cast<unsigned>(State.range(0));
  TypeGraph A = unrolledList(Syms, 8, 6);
  TypeGraph B = unrolledList(Syms, 8, 7);
  NormalizeOptions Opts;
  Opts.OrCap = Cap;
  for (auto _ : State) {
    TypeGraph U = graphUnion(A, B, Syms, Opts);
    benchmark::DoNotOptimize(U.numNodes());
  }
}
BENCHMARK(BM_OrCapUnion)->Arg(0)->Arg(5)->Arg(2);

static void BM_CollapsingVsExactUnion(benchmark::State &State) {
  // The replacement rule's collapsing union vs the exact union on the
  // Figure 6 graphs (collapse must be cheaper AND smaller).
  SymbolTable Syms;
  std::string Err;
  TypeGraph Gn = *parseGrammar(
      "Tn ::= 0 | +(T3,T6).\n"
      "T3 ::= 0 | +(Z,T4).\nZ ::= 0.\n"
      "T4 ::= 1 | *(T4,T5).\n"
      "T5 ::= cst(Any) | par(Tn) | var(Any).\n"
      "T6 ::= 1 | *(T6,T7).\n"
      "T7 ::= cst(Any) | par(T3) | var(Any).",
      Syms, &Err);
  bool Collapsing = State.range(0) != 0;
  for (auto _ : State) {
    TypeGraph U = Collapsing
                      ? collapsingUnionFrom(Gn, {Gn.root()}, Syms)
                      : normalizeFrom(Gn, {Gn.root()}, Syms);
    benchmark::DoNotOptimize(U.numNodes());
  }
}
BENCHMARK(BM_CollapsingVsExactUnion)->Arg(0)->Arg(1);

static void BM_Figure6Widening(benchmark::State &State) {
  SymbolTable Syms;
  std::string Err;
  TypeGraph Old = *parseGrammar("To ::= 0 | +(Z,T1).\nZ ::= 0.\n"
                                "T1 ::= 1 | *(T1,T2).\n"
                                "T2 ::= cst(Any) | par(To) | var(Any).",
                                Syms, &Err);
  TypeGraph New = *parseGrammar(
      "Tn ::= 0 | +(T3,T6).\n"
      "T3 ::= 0 | +(Z,T4).\nZ ::= 0.\n"
      "T4 ::= 1 | *(T4,T5).\n"
      "T5 ::= cst(Any) | par(Tn) | var(Any).\n"
      "T6 ::= 1 | *(T6,T7).\n"
      "T7 ::= cst(Any) | par(T3) | var(Any).",
      Syms, &Err);
  for (auto _ : State) {
    TypeGraph W = graphWiden(Old, New, Syms);
    benchmark::DoNotOptimize(W.numNodes());
  }
}
BENCHMARK(BM_Figure6Widening);

BENCHMARK_MAIN();
