//===- bench/service_soak.cpp - Resident-service overload soak ------------==//
///
/// \file
/// Soaks the resident serving layer (runtime/AnalysisService.h) under a
/// ramped open-loop load: legs at 0.5x / 1x / 2x / 4x of the *measured*
/// queue-free capacity (bench/BenchUtil.h, measureQueueFreeCapacity —
/// the same helper and query mix bench/throughput.cpp reports, so the
/// multiples are derived from this machine, never hardcoded). Each leg
/// paces trySubmit calls at the target rate for a fixed wall-clock
/// window, drains, and accounts for every single ticket:
///
///   - a job either ran to a structured result or was refused with
///     FailKind::Rejected — anything else (an unstructured failure, a
///     refusal without the Rejected kind) is counted and fails the run;
///   - admitted jobs that completed Ok and undegraded must be
///     bit-identical to the sequential oracle fingerprint;
///   - p50/p99 submission-to-fulfillment latency of the jobs that ran;
///   - after the 1x leg, the post-drain promoted tier must serve the
///     full query mix bit-identically (lifecycle rotation intact).
///
/// When built -DGAIA_FAULT_INJECT=ON the 2x leg runs under chaos: fault
/// probes armed, rare long stalls (the blind-sleep pathology that
/// defeats cooperative cancellation), a ResilienceManager ladder, and a
/// fast watchdog — the leg must still account for every ticket
/// structurally; watchdog escalations are recorded in the JSON.
///
/// Writes BENCH_service.json (override with BENCH_SERVICE_JSON; empty
/// skips) for bench/check_bench_regression.py --service. Env knobs:
///   BENCH_SERVICE_WORKERS      service worker threads   (default 4)
///   BENCH_SERVICE_SECONDS      seconds per leg          (default 1.0)
///   BENCH_SERVICE_DEADLINE_MS  per-request deadline     (default 250)
///   BENCH_SERVICE_QUEUE        admission queue capacity (default 64)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Report.h"
#include "runtime/AnalysisPool.h"
#include "runtime/AnalysisService.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace gaia;

namespace {

struct SoakConfig {
  uint32_t Workers = 4;
  uint32_t QueueCapacity = 64;
  uint32_t DeadlineMs = 250;
  double SecondsPerLeg = 1.0;
};

struct LegResult {
  double Multiple = 0;
  bool Chaos = false;
  double TargetRate = 0;
  uint64_t Submitted = 0;
  uint64_t Ran = 0;            ///< reached the analysis stack
  uint64_t NotAdmitted = 0;    ///< refused/shed (must all be Rejected)
  uint64_t CompletedOk = 0;
  uint64_t DeadlineMissed = 0;
  uint64_t Unstructured = 0;   ///< ran, failed, but FailKind::None
  uint64_t BadRejects = 0;     ///< refused without FailKind::Rejected
  uint64_t Mismatches = 0;     ///< undegraded Ok result != oracle
  double P50Ms = 0;
  double P99Ms = 0;
  uint64_t WatchdogCancels = 0;
  uint64_t WatchdogPoisoned = 0;
  uint64_t WorkersReplaced = 0;
  uint64_t FaultFires = 0;
  uint64_t Stalls = 0;

  double shedRate() const {
    return Submitted ? double(NotAdmitted) / double(Submitted) : 0;
  }
};

double percentile(std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(Q * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// One soak leg: open-loop pacing against a fresh service over the
/// frozen \p Cache. Open loop is the honest overload model — the
/// generator does not slow down when the service sheds, exactly like
/// independent clients would not.
LegResult runLeg(double Multiple, double CapacityJps, bool Chaos,
                 const SoakConfig &C,
                 const std::vector<AnalysisJob> &Queries,
                 const std::map<std::string, std::string> &Oracle,
                 const std::shared_ptr<const SharedCache> &Cache,
                 bool VerifyTierAfterDrain, bool *TierIdentical) {
  using Clock = std::chrono::steady_clock;

  ServiceOptions SO;
  SO.Workers = C.Workers;
  SO.QueueCapacity = C.QueueCapacity;
  SO.Admission = AdmitPolicy::ShedEarliestToMiss;
  SO.Shared = Cache;
  SO.CollectDeltas = VerifyTierAfterDrain;
#ifdef GAIA_FAULT_INJECT
  uint64_t FiresBefore = faultinject::totalFires();
  uint64_t StallsBefore = faultinject::totalStalls();
  if (Chaos) {
    SO.Resilience = std::make_shared<ResilienceManager>();
    SO.WatchdogPollMs = 10;
    // Rare long stalls: each one is blind to cancellation for longer
    // than the watchdog's cancel horizon (2 x deadline), so any stall
    // that lands exercises the escalation ladder.
    faultinject::configure(1e-4, 20260808);
    faultinject::configureStall(1e-6, 3 * C.DeadlineMs);
  }
#endif

  LegResult Leg;
  Leg.Multiple = Multiple;
  Leg.Chaos = Chaos;
  Leg.TargetRate = Multiple * CapacityJps;

  std::vector<std::pair<size_t, ServiceTicketPtr>> Tickets;
  Tickets.reserve(static_cast<size_t>(Leg.TargetRate * C.SecondsPerLeg) + 16);
  {
    AnalysisService Svc(SO);
    const std::chrono::duration<double> Interval(1.0 / Leg.TargetRate);
    const Clock::time_point Start = Clock::now();
    const Clock::time_point End =
        Start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(C.SecondsPerLeg));
    for (uint64_t N = 0;; ++N) {
      Clock::time_point Tick =
          Start +
          std::chrono::duration_cast<Clock::duration>(Interval * double(N));
      if (Tick >= End)
        break;
      std::this_thread::sleep_until(Tick);
      size_t QI = N % Queries.size();
      Tickets.emplace_back(QI, Svc.trySubmit({Queries[QI], C.DeadlineMs}));
    }
    Svc.drain(std::chrono::milliseconds(15000));

#ifdef GAIA_FAULT_INJECT
    if (Chaos) {
      faultinject::configure(0.0, 1);
      faultinject::configureStall(0.0, 0);
    }
    Leg.FaultFires = faultinject::totalFires() - FiresBefore;
    Leg.Stalls = faultinject::totalStalls() - StallsBefore;
#endif

    ServiceStats St = Svc.stats();
    Leg.DeadlineMissed = St.DeadlineMissed;
    Leg.WatchdogCancels = St.WatchdogCancels;
    Leg.WatchdogPoisoned = St.WatchdogPoisoned;
    Leg.WorkersReplaced = St.WorkersReplaced;

    std::vector<double> Latencies;
    Latencies.reserve(Tickets.size());
    for (const auto &[QI, Ticket] : Tickets) {
      ++Leg.Submitted;
      const ServiceOutcome &O = Ticket->wait();
      if (!O.Ran) {
        ++Leg.NotAdmitted;
        if (O.Outcome.Result.Fail != FailKind::Rejected)
          ++Leg.BadRejects;
        continue;
      }
      ++Leg.Ran;
      Latencies.push_back(O.LatencyMs);
      const AnalysisResult &R = O.Outcome.Result;
      if (R.Ok) {
        ++Leg.CompletedOk;
        if (!R.Degraded) {
          const AnalysisJob &J = Queries[QI];
          if (analysisFingerprint(R) != Oracle.at(J.Key + "|" + J.GoalSpec))
            ++Leg.Mismatches;
        }
      } else if (R.Fail == FailKind::None) {
        ++Leg.Unstructured;
      }
    }
    std::sort(Latencies.begin(), Latencies.end());
    Leg.P50Ms = percentile(Latencies, 0.50);
    Leg.P99Ms = percentile(Latencies, 0.99);

    if (VerifyTierAfterDrain && TierIdentical) {
      // The lifecycle rotation must be observationally invisible: the
      // promoted tier serves the full mix bit-identically.
      *TierIdentical = true;
      PoolOptions PO;
      PO.Workers = C.Workers;
      PO.Shared = Svc.tier();
      AnalysisPool Pool(PO);
      std::vector<JobOutcome> Out = Pool.run(Queries);
      for (size_t I = 0; I != Out.size(); ++I) {
        const AnalysisJob &J = Queries[I];
        if (analysisFingerprint(Out[I].Result) !=
            Oracle.at(J.Key + "|" + J.GoalSpec)) {
          std::fprintf(stderr, "POST-DRAIN TIER MISMATCH: %s (%s)\n",
                       J.Key.c_str(), J.GoalSpec.c_str());
          *TierIdentical = false;
        }
      }
    }
  }
  return Leg;
}

uint32_t envU32(const char *Name, uint32_t Default) {
  if (const char *E = std::getenv(Name))
    return std::max(1u, static_cast<uint32_t>(std::strtoul(E, nullptr, 10)));
  return Default;
}

} // namespace

int main() {
  SoakConfig C;
  C.Workers = envU32("BENCH_SERVICE_WORKERS", 4);
  C.QueueCapacity = envU32("BENCH_SERVICE_QUEUE", 64);
  C.DeadlineMs = envU32("BENCH_SERVICE_DEADLINE_MS", 250);
  if (const char *E = std::getenv("BENCH_SERVICE_SECONDS"))
    C.SecondsPerLeg = std::max(0.05, std::strtod(E, nullptr));

  std::vector<AnalysisJob> Queries = serviceQueryMix();

  // Warmed frozen tier over the published goals (the variant goals hit
  // the tier partially, as in bench/throughput.cpp).
  std::vector<AnalysisJob> Warmup;
  for (const BenchmarkProgram &B : table123Suite())
    Warmup.push_back({B.Key, B.Source, B.GoalSpec});
  std::string Err;
  std::shared_ptr<const SharedCache> Cache =
      SharedCache::build(Warmup, AnalyzerOptions{}, &Err);
  if (!Cache) {
    std::fprintf(stderr, "error: shared cache build failed: %s\n",
                 Err.c_str());
    return 1;
  }

  // Sequential oracle fingerprints: the bit-identity reference for
  // every admitted job and for the post-drain tier check.
  std::map<std::string, std::string> Oracle;
  for (const AnalysisJob &Q : Queries) {
    AnalysisResult R = analyzeProgram(Q.Source, Q.GoalSpec);
    if (!R.Ok) {
      std::fprintf(stderr, "error: oracle %s: %s\n", Q.Key.c_str(),
                   R.Error.c_str());
      return 1;
    }
    Oracle[Q.Key + "|" + Q.GoalSpec] = analysisFingerprint(R);
  }

  // Queue-free capacity baseline at 1/2/4/8 workers (plus the service's
  // worker count if it is not among them): the soak multiples are
  // derived from the measured figure, never hardcoded.
  std::vector<AnalysisJob> CapacityBatch;
  for (int R = 0; R != 2; ++R)
    CapacityBatch.insert(CapacityBatch.end(), Queries.begin(), Queries.end());
  std::vector<uint32_t> WorkerCounts = {1, 2, 4, 8};
  if (std::find(WorkerCounts.begin(), WorkerCounts.end(), C.Workers) ==
      WorkerCounts.end())
    WorkerCounts.push_back(C.Workers);
  std::vector<CapacityPoint> Capacity =
      measureQueueFreeCapacity(CapacityBatch, Cache, WorkerCounts);
  double CapacityJps = 0;
  for (const CapacityPoint &P : Capacity)
    if (P.Workers == C.Workers)
      CapacityJps = P.St.JobsPerSecond;
  if (CapacityJps <= 0) {
    std::fprintf(stderr, "error: no capacity measurement at %u workers\n",
                 C.Workers);
    return 1;
  }

  std::printf("=== resident-service overload soak ===\n");
  std::printf("workers: %u, queue: %u, deadline: %ums, %.2fs/leg\n",
              C.Workers, C.QueueCapacity, C.DeadlineMs, C.SecondsPerLeg);
  std::printf("queue-free capacity:");
  for (const CapacityPoint &P : Capacity)
    std::printf("  %uw=%.0f/s", P.Workers, P.St.JobsPerSecond);
  std::printf("\nsoak base (at %u workers): %.0f jobs/s\n\n", C.Workers,
              CapacityJps);
  std::printf("  mult  chaos  target/s  submitted     ran    shed  shed%%  "
              "p50(ms)  p99(ms)  wd(c/p/r)\n");

#ifdef GAIA_FAULT_INJECT
  const bool ChaosBuilt = true;
#else
  const bool ChaosBuilt = false;
#endif

  bool TierIdentical = false;
  std::vector<LegResult> Legs;
  for (double Multiple : {0.5, 1.0, 2.0, 4.0}) {
    bool Chaos = ChaosBuilt && Multiple == 2.0;
    bool VerifyTier = Multiple == 1.0;
    LegResult Leg =
        runLeg(Multiple, CapacityJps, Chaos, C, Queries, Oracle, Cache,
               VerifyTier, VerifyTier ? &TierIdentical : nullptr);
    std::printf("  %4.1fx  %5s  %8.0f  %9llu %7llu %7llu  %4.1f%%  %7.1f  "
                "%7.1f  %llu/%llu/%llu\n",
                Leg.Multiple, Leg.Chaos ? "yes" : "no", Leg.TargetRate,
                static_cast<unsigned long long>(Leg.Submitted),
                static_cast<unsigned long long>(Leg.Ran),
                static_cast<unsigned long long>(Leg.NotAdmitted),
                100.0 * Leg.shedRate(), Leg.P50Ms, Leg.P99Ms,
                static_cast<unsigned long long>(Leg.WatchdogCancels),
                static_cast<unsigned long long>(Leg.WatchdogPoisoned),
                static_cast<unsigned long long>(Leg.WorkersReplaced));
    Legs.push_back(Leg);
  }

  uint64_t UnstructuredTotal = 0, BadRejectTotal = 0, MismatchTotal = 0;
  for (const LegResult &L : Legs) {
    UnstructuredTotal += L.Unstructured;
    BadRejectTotal += L.BadRejects;
    MismatchTotal += L.Mismatches;
  }
  std::printf("\npost-drain tier identical: %s; unstructured failures: %llu; "
              "non-Rejected refusals: %llu; mismatches: %llu\n",
              TierIdentical ? "yes" : "NO",
              static_cast<unsigned long long>(UnstructuredTotal),
              static_cast<unsigned long long>(BadRejectTotal),
              static_cast<unsigned long long>(MismatchTotal));

  const char *JsonPath = std::getenv("BENCH_SERVICE_JSON");
  if (!JsonPath)
    JsonPath = "BENCH_service.json";
  if (*JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"hardware_concurrency\": %u,\n"
                 "  \"workers\": %u,\n  \"queue_capacity\": %u,\n"
                 "  \"deadline_ms\": %u,\n  \"seconds_per_leg\": %.3f,\n"
                 "  \"chaos_built\": %s,\n",
                 std::thread::hardware_concurrency(), C.Workers,
                 C.QueueCapacity, C.DeadlineMs, C.SecondsPerLeg,
                 ChaosBuilt ? "true" : "false");
    std::fprintf(F, "  \"capacity\": [\n");
    for (size_t I = 0; I != Capacity.size(); ++I)
      std::fprintf(F, "    {\"workers\": %u, \"jobs_per_sec\": %.2f}%s\n",
                   Capacity[I].Workers, Capacity[I].St.JobsPerSecond,
                   I + 1 != Capacity.size() ? "," : "");
    std::fprintf(F, "  ],\n  \"capacity_jobs_per_sec\": %.2f,\n  \"legs\": [\n",
                 CapacityJps);
    for (size_t I = 0; I != Legs.size(); ++I) {
      const LegResult &L = Legs[I];
      std::fprintf(
          F,
          "    {\"multiple\": %.2f, \"chaos\": %s, \"target_rate\": %.1f, "
          "\"submitted\": %llu, \"ran\": %llu, \"not_admitted\": %llu, "
          "\"shed_rate\": %.4f, \"completed_ok\": %llu, "
          "\"deadline_missed\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"unstructured_failures\": %llu, \"non_rejected_refusals\": %llu, "
          "\"mismatches\": %llu, \"watchdog_cancels\": %llu, "
          "\"watchdog_poisoned\": %llu, \"workers_replaced\": %llu, "
          "\"fault_fires\": %llu, \"stalls\": %llu}%s\n",
          L.Multiple, L.Chaos ? "true" : "false", L.TargetRate,
          static_cast<unsigned long long>(L.Submitted),
          static_cast<unsigned long long>(L.Ran),
          static_cast<unsigned long long>(L.NotAdmitted), L.shedRate(),
          static_cast<unsigned long long>(L.CompletedOk),
          static_cast<unsigned long long>(L.DeadlineMissed), L.P50Ms, L.P99Ms,
          static_cast<unsigned long long>(L.Unstructured),
          static_cast<unsigned long long>(L.BadRejects),
          static_cast<unsigned long long>(L.Mismatches),
          static_cast<unsigned long long>(L.WatchdogCancels),
          static_cast<unsigned long long>(L.WatchdogPoisoned),
          static_cast<unsigned long long>(L.WorkersReplaced),
          static_cast<unsigned long long>(L.FaultFires),
          static_cast<unsigned long long>(L.Stalls),
          I + 1 != Legs.size() ? "," : "");
    }
    std::fprintf(F,
                 "  ],\n  \"post_drain_tier_identical\": %s,\n"
                 "  \"unstructured_total\": %llu,\n"
                 "  \"non_rejected_refusal_total\": %llu,\n"
                 "  \"identical_all\": %s\n}\n",
                 TierIdentical ? "true" : "false",
                 static_cast<unsigned long long>(UnstructuredTotal),
                 static_cast<unsigned long long>(BadRejectTotal),
                 MismatchTotal == 0 ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }

  if (UnstructuredTotal || BadRejectTotal || MismatchTotal ||
      !TierIdentical) {
    std::fprintf(stderr, "FAIL: service soak found unstructured failures, "
                         "non-Rejected refusals, oracle mismatches, or a "
                         "broken post-drain tier\n");
    return 1;
  }
  return 0;
}
