//===- bench/parallel_solve.cpp - SCC-scheduled parallel fixpoint ---------==//
///
/// \file
/// Measures the parallel solve mode inside a *single* analysis
/// (AnalyzerOptions::SolverThreads, gaia/SccScheduler.h): wall-clock
/// latency at 1/2/4/8 solver threads on the largest Section 9 programs
/// (largest by sequential solve time), the resulting speedup curve, and
/// — the part that gates — semantic-fingerprint identity between every
/// parallel run and the sequential oracle on *all* Section 9 programs.
/// Also reports the memo-table reserve satellite's allocation A/B:
/// allocations per analysis with the call-cone reserve
/// (AnalyzerOptions::ReserveFromCallCone) on vs off, via a counting
/// global operator new.
///
/// Writes machine-readable BENCH_parallel.json (override the path with
/// BENCH_PARALLEL_JSON; empty string skips the file) for
/// bench/check_bench_regression.py --parallel. Identity gates
/// unconditionally; the 4-thread speedup floor is tiered by
/// hardware_concurrency like the throughput gate (1.5x with >= 8
/// hardware threads, 1.2x with 4-7, identity-only below 4 — speculative
/// workers cannot beat the oracle without cores to run on).
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Report.h"
#include "programs/Benchmarks.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

using namespace gaia;

// Counting allocator hooks for the reserve A/B (same technique as
// bench/normalize_hot.cpp). Parallel runs allocate on worker threads
// too; the counter is only read around *sequential* runs, so a plain
// (racy-under-threads) counter would still be wrong to reuse there —
// keep it relaxed-atomic and cheap.
static std::atomic<uint64_t> GAllocs{0};

void *operator new(std::size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size))
    return P;
  throw std::bad_alloc();
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

struct ThreadRun {
  uint32_t Threads = 0;
  double Seconds = 0;
  double Speedup = 1.0;
  bool Identical = true;
  uint32_t SccCount = 0;
  uint32_t SccParallelism = 0;
  uint64_t FallbackSolves = 0;
};

struct ProgramRuns {
  std::string Key;
  std::vector<ThreadRun> Runs;
};

double now() {
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - Epoch).count();
}

AnalysisResult timedRun(const BenchmarkProgram &B, uint32_t Threads,
                        unsigned Repeats, double &BestSeconds) {
  AnalyzerOptions O;
  O.SolverThreads = Threads;
  AnalysisResult Result;
  BestSeconds = 1e300;
  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    double T0 = now();
    AnalysisResult R = analyzeProgram(B.Source, B.GoalSpec, O);
    double T = now() - T0;
    if (R.Ok && T < BestSeconds) {
      BestSeconds = T;
      Result = std::move(R);
    } else if (!R.Ok) {
      return R;
    }
  }
  return Result;
}

} // namespace

int main() {
  unsigned Hardware = std::thread::hardware_concurrency();
  unsigned Repeats = 3;
  if (const char *E = std::getenv("BENCH_PARALLEL_REPEAT"))
    Repeats = std::max(1u, static_cast<unsigned>(std::strtoul(E, nullptr, 10)));

  const std::vector<BenchmarkProgram> &Suite = table123Suite();
  std::printf("=== SCC-scheduled parallel solve ===\n");
  std::printf("hardware threads: %u, repeats: %u\n\n", Hardware, Repeats);

  // Sequential oracles for every program; also picks the latency-curve
  // subjects (the three largest by sequential solve time).
  struct OracleRow {
    const BenchmarkProgram *B = nullptr;
    std::string Fingerprint;
    double Seconds = 0;
  };
  std::vector<OracleRow> Oracles;
  for (const BenchmarkProgram &B : Suite) {
    double Best = 0;
    AnalysisResult R = timedRun(B, 1, Repeats, Best);
    if (!R.Ok) {
      std::fprintf(stderr, "error: oracle %s: %s\n", B.Key.c_str(),
                   R.Error.c_str());
      return 1;
    }
    Oracles.push_back({&B, analysisSemanticFingerprint(R), Best});
  }

  // Identity sweep: every program, 2 and 4 solver threads.
  bool IdenticalAll = true;
  for (const OracleRow &O : Oracles) {
    for (uint32_t Threads : {2u, 4u}) {
      double Best = 0;
      AnalysisResult R = timedRun(*O.B, Threads, 1, Best);
      bool Same = R.Ok && analysisSemanticFingerprint(R) == O.Fingerprint;
      if (!Same) {
        IdenticalAll = false;
        std::fprintf(stderr,
                     "FAIL: %s at SolverThreads=%u diverges from the "
                     "sequential oracle\n",
                     O.B->Key.c_str(), Threads);
      }
    }
  }
  std::printf("identity sweep (all programs, 2/4 threads): %s\n\n",
              IdenticalAll ? "identical" : "DIVERGED");

  // Latency curve on the three largest programs.
  std::vector<const OracleRow *> Largest;
  for (const OracleRow &O : Oracles)
    Largest.push_back(&O);
  std::sort(Largest.begin(), Largest.end(),
            [](const OracleRow *A, const OracleRow *B) {
              return A->Seconds > B->Seconds;
            });
  if (Largest.size() > 3)
    Largest.resize(3);

  std::vector<ProgramRuns> Curve;
  double Speedup4OnLargest = 1.0;
  std::string LargestKey = Largest.empty() ? "" : Largest[0]->B->Key;
  std::printf("program  threads  wall(s)    speedup  sccs  par  fallback  "
              "identical\n");
  for (const OracleRow *O : Largest) {
    ProgramRuns PR;
    PR.Key = O->B->Key;
    for (uint32_t Threads : {1u, 2u, 4u, 8u}) {
      double Best = 0;
      AnalysisResult R = timedRun(*O->B, Threads, Repeats, Best);
      ThreadRun TR;
      TR.Threads = Threads;
      TR.Seconds = Best;
      TR.Identical =
          R.Ok && analysisSemanticFingerprint(R) == O->Fingerprint;
      if (!TR.Identical)
        IdenticalAll = false;
      TR.Speedup = Best > 0 ? PR.Runs.empty() ? 1.0
                                              : PR.Runs.front().Seconds / Best
                            : 1.0;
      TR.SccCount = R.Stats.SccCount;
      TR.SccParallelism = R.Stats.SccParallelism;
      TR.FallbackSolves = R.Stats.SccFallbackSolves;
      std::printf("%-8s %7u  %9.4f  %7.2f  %4u  %3u  %8llu  %s\n",
                  PR.Key.c_str(), Threads, TR.Seconds, TR.Speedup,
                  TR.SccCount, TR.SccParallelism,
                  static_cast<unsigned long long>(TR.FallbackSolves),
                  TR.Identical ? "yes" : "NO");
      if (Threads == 4 && O == Largest[0])
        Speedup4OnLargest = TR.Speedup;
      PR.Runs.push_back(TR);
    }
    Curve.push_back(std::move(PR));
  }

  // Reserve A/B: allocations per sequential analysis with the
  // call-cone reserve on vs off, summed over the whole suite.
  auto CountAllocs = [&](bool Reserve) -> uint64_t {
    AnalyzerOptions O;
    O.ReserveFromCallCone = Reserve;
    uint64_t Start = GAllocs.load(std::memory_order_relaxed);
    for (const BenchmarkProgram &B : Suite) {
      AnalysisResult R = analyzeProgram(B.Source, B.GoalSpec, O);
      if (!R.Ok) {
        std::fprintf(stderr, "error: %s: %s\n", B.Key.c_str(),
                     R.Error.c_str());
        std::exit(1);
      }
    }
    return GAllocs.load(std::memory_order_relaxed) - Start;
  };
  uint64_t AllocsReserve = CountAllocs(true);
  uint64_t AllocsNoReserve = CountAllocs(false);
  std::printf("\nmemo-table reserve A/B (suite total allocations): "
              "reserve=%llu  no-reserve=%llu  (saved %lld)\n",
              static_cast<unsigned long long>(AllocsReserve),
              static_cast<unsigned long long>(AllocsNoReserve),
              static_cast<long long>(AllocsNoReserve) -
                  static_cast<long long>(AllocsReserve));

  std::printf("\nlargest program: %s, 4-thread speedup: %.2fx\n",
              LargestKey.c_str(), Speedup4OnLargest);

  const char *JsonPath = std::getenv("BENCH_PARALLEL_JSON");
  if (!JsonPath)
    JsonPath = "BENCH_parallel.json";
  if (JsonPath[0] != '\0') {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"parallel_solve\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", Hardware);
    std::fprintf(F, "  \"identical_all\": %s,\n",
                 IdenticalAll ? "true" : "false");
    std::fprintf(F, "  \"largest_key\": \"%s\",\n", LargestKey.c_str());
    std::fprintf(F, "  \"speedup_4t_largest\": %.4f,\n", Speedup4OnLargest);
    std::fprintf(F, "  \"allocs_reserve\": %llu,\n",
                 static_cast<unsigned long long>(AllocsReserve));
    std::fprintf(F, "  \"allocs_noreserve\": %llu,\n",
                 static_cast<unsigned long long>(AllocsNoReserve));
    std::fprintf(F, "  \"programs\": [\n");
    for (size_t I = 0; I != Curve.size(); ++I) {
      const ProgramRuns &PR = Curve[I];
      std::fprintf(F, "    {\"key\": \"%s\", \"runs\": [\n", PR.Key.c_str());
      for (size_t J = 0; J != PR.Runs.size(); ++J) {
        const ThreadRun &TR = PR.Runs[J];
        std::fprintf(
            F,
            "      {\"threads\": %u, \"seconds\": %.6f, \"speedup\": %.4f, "
            "\"identical\": %s, \"scc_count\": %u, \"scc_parallelism\": %u, "
            "\"fallback_solves\": %llu}%s\n",
            TR.Threads, TR.Seconds, TR.Speedup,
            TR.Identical ? "true" : "false", TR.SccCount, TR.SccParallelism,
            static_cast<unsigned long long>(TR.FallbackSolves),
            J + 1 == PR.Runs.size() ? "" : ",");
      }
      std::fprintf(F, "    ]}%s\n", I + 1 == Curve.size() ? "" : ",");
    }
    std::fprintf(F, "  ]\n");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }

  return IdenticalAll ? 0 : 1;
}
