//===- bench/table5_input_tags.cpp - Reproduce Table 5 --------------------==//
///
/// \file
/// Table 5: accuracy results for input tags (same columns as Table 4,
/// computed over the lub of the input patterns of each procedure).
///
//===----------------------------------------------------------------------===//

#define TAGS_OUTPUT 0
#include "table45_tags.inc"
