//===- bench/table1_sizes.cpp - Reproduce Table 1 -------------------------==//
///
/// \file
/// Table 1: sizes of the programs — number of procedures, clauses,
/// program points, goals, and the static call-tree size — printed next
/// to the paper's values, plus google-benchmark timings of the front
/// end (parse + normalize + metrics) itself.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gaia;

static void printTable1() {
  printHeaderBlock("Table 1", "sizes of the programs");
  std::printf("%-4s | %s\n", "", sizeTableHeader().c_str());
  for (const BenchmarkProgram &B : table123Suite()) {
    SymbolTable Syms;
    std::string Err;
    std::optional<Program> Prog = Program::parse(B.Source, Syms, &Err);
    if (!Prog) {
      std::printf("%s: parse error: %s\n", B.Key.c_str(), Err.c_str());
      continue;
    }
    NProgram NProg = NProgram::fromProgram(*Prog, Syms);
    std::string ErrPat;
    auto Pattern = parseInputPattern(B.GoalSpec, &ErrPat);
    FunctorId Entry = Syms.functor(Pattern->PredName, Pattern->arity());
    SizeMetrics M = computeSizeMetrics(*Prog, NProg, Syms, Entry);
    std::printf("ours | %s\n", formatSizeRow(B.Key, M).c_str());
    if (const PaperTable1Row *P = paperTable1(B.Key)) {
      SizeMetrics PM;
      PM.NumProcedures = P->Procedures;
      PM.NumClauses = P->Clauses;
      PM.NumProgramPoints = P->ProgramPoints;
      PM.NumGoals = P->Goals;
      PM.StaticCallTreeSize = P->CallTree;
      std::printf("papr | %s\n", formatSizeRow(B.Key, PM).c_str());
    }
  }
  std::printf("\n");
}

static void BM_FrontEnd(benchmark::State &State, const std::string &Key) {
  const BenchmarkProgram *B = findBenchmark(Key);
  for (auto _ : State) {
    SymbolTable Syms;
    std::string Err;
    std::optional<Program> Prog = Program::parse(B->Source, Syms, &Err);
    NProgram NProg = NProgram::fromProgram(*Prog, Syms);
    benchmark::DoNotOptimize(NProg.numProgramPoints());
  }
}

int main(int argc, char **argv) {
  printTable1();
  for (const BenchmarkProgram &B : table123Suite())
    benchmark::RegisterBenchmark(("BM_FrontEnd/" + B.Key).c_str(),
                                 BM_FrontEnd, B.Key);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
