//===- bench/table4_output_tags.cpp - Reproduce Table 4 -------------------==//
///
/// \file
/// Table 4: accuracy results for output tags — per-tag counts for the
/// type-graph analysis with the principal-functor counts in parentheses,
/// and the improvement columns A/AI/AR and C/CI/CR.
///
//===----------------------------------------------------------------------===//

#define TAGS_OUTPUT 1
#include "table45_tags.inc"
