//===- bench/table3_performance.cpp - Reproduce Table 3 -------------------==//
///
/// \file
/// Table 3: computation results — analysis CPU time, procedure
/// iterations, clause iterations, and the or-degree-capped variants
/// (cap 5 and cap 2, Section 9's generalization that replaces an
/// or-vertex with too many successors by an any-vertex). Printed next to
/// the paper's SPARC-10 numbers; absolute times differ, the shape (which
/// programs are cheap, which pathological, and that caps help the
/// pathological one) is the reproduction target. google-benchmark
/// timings cover the quick programs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace gaia;

static void printTable3() {
  printHeaderBlock("Table 3", "computation results (type-graph domain)");
  std::printf("%-4s | %s\n", "", perfTableHeader().c_str());
  for (const BenchmarkProgram &B : table123Suite()) {
    AnalyzerOptions Base;
    AnalysisResult R = runBenchmark(B, Base);
    AnalyzerOptions Cap5 = Base;
    Cap5.OrCap = 5;
    AnalysisResult R5 = runBenchmark(B, Cap5);
    AnalyzerOptions Cap2 = Base;
    Cap2.OrCap = 2;
    AnalysisResult R2 = runBenchmark(B, Cap2);
    std::printf("ours | %s\n",
                formatPerfRow(B.Key, R.Stats.SolveSeconds,
                              R.Stats.ProcedureIterations,
                              R.Stats.ClauseIterations,
                              R5.Stats.SolveSeconds,
                              R2.Stats.SolveSeconds)
                    .c_str());
    if (const PaperTable3Row *P = paperTable3(B.Key))
      std::printf("papr | %s\n",
                  formatPerfRow(B.Key, P->Cpu, P->ProcIters,
                                P->ClauseIters, P->Cpu5, P->Cpu2)
                      .c_str());
    std::fflush(stdout);
  }
  std::printf("\n");
}

static void BM_Analyze(benchmark::State &State, const std::string &Key) {
  const BenchmarkProgram *B = findBenchmark(Key);
  for (auto _ : State) {
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec);
    benchmark::DoNotOptimize(R.QuerySucceeds);
  }
}

int main(int argc, char **argv) {
  printTable3();
  // Register timing loops only for the fast programs; the slow ones are
  // covered by the table above.
  for (const char *Key : {"QU", "PG", "PL", "BR", "CS", "PE", "KA"})
    benchmark::RegisterBenchmark((std::string("BM_Analyze/") + Key).c_str(),
                                 BM_Analyze, std::string(Key));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
