//===- bench/table3_performance.cpp - Reproduce Table 3 -------------------==//
///
/// \file
/// Table 3: computation results — analysis CPU time, procedure
/// iterations, clause iterations, and the or-degree-capped variants
/// (cap 5 and cap 2, Section 9's generalization that replaces an
/// or-vertex with too many successors by an any-vertex). Printed next to
/// the paper's SPARC-10 numbers; absolute times differ, the shape (which
/// programs are cheap, which pathological, and that caps help the
/// pathological one) is the reproduction target. google-benchmark
/// timings cover the quick programs.
///
/// Besides the human-readable table, the harness writes a
/// machine-readable BENCH_table3.json (per-program solve seconds,
/// iterations, op-cache hit rates) so CI can accumulate a bench
/// trajectory. Override the output path with the BENCH_TABLE3_JSON
/// environment variable; set it to the empty string to skip the file.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#ifdef __GLIBC__
#include <malloc.h>
#endif

using namespace gaia;

namespace {

struct Table3Row {
  std::string Key;
  AnalysisResult Base;
  AnalysisResult Cap5;
  AnalysisResult Cap2;
  long PeakRssKb = 0; ///< peak RSS over the uncapped run (see below)
};

/// Peak-RSS sampling for the paper's Table 3 memory column. On Linux the
/// kernel keeps a per-process resident-set high-water mark (VmHWM) that
/// can be *reset* by writing "5" to /proc/self/clear_refs: reset, run
/// the analysis, read. The reset clamps the watermark to the *current*
/// RSS, so the measurement is floored by whatever earlier programs left
/// resident; glibc's malloc_trim returns freed arena memory to the
/// kernel first to keep that floor close to the program's own footprint
/// (a small residue remains — the per-program numbers are upper bounds,
/// tightest for the largest programs). When the reset is unavailable
/// (non-Linux, locked-down procfs) the getrusage fallback still reports
/// a number, but it is the monotone process-wide maximum — the JSON
/// flags which of the two the run produced.
bool resetPeakRss() {
#ifdef __GLIBC__
  malloc_trim(0);
#endif
#ifdef __linux__
  if (std::FILE *F = std::fopen("/proc/self/clear_refs", "w")) {
    bool Ok = std::fputs("5", F) >= 0;
    return std::fclose(F) == 0 && Ok;
  }
#endif
  return false;
}

long peakRssKb() {
#ifdef __linux__
  if (std::FILE *F = std::fopen("/proc/self/status", "r")) {
    char Line[256];
    long Kb = -1;
    while (std::fgets(Line, sizeof(Line), F))
      if (std::strncmp(Line, "VmHWM:", 6) == 0) {
        Kb = std::strtol(Line + 6, nullptr, 10);
        break;
      }
    std::fclose(F);
    if (Kb >= 0)
      return Kb;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) == 0) {
#ifdef __APPLE__
    return RU.ru_maxrss / 1024; // bytes on macOS
#else
    return RU.ru_maxrss; // KiB elsewhere
#endif
  }
#endif
  return 0;
}

double cacheHitRate(const AnalysisResult &R) {
  uint64_t Total = R.Stats.OpCacheHits + R.Stats.OpCacheMisses;
  return Total ? double(R.Stats.OpCacheHits) / double(Total) : 0.0;
}


std::vector<Table3Row> runTable3(bool &PerProgramRss) {
  std::vector<Table3Row> Rows;
  PerProgramRss = true;
  for (const BenchmarkProgram &B : table123Suite()) {
    Table3Row Row;
    Row.Key = B.Key;
    AnalyzerOptions Base;
    // Peak RSS brackets the uncapped run — the configuration the
    // paper's memory column measures.
    PerProgramRss = resetPeakRss() && PerProgramRss;
    Row.Base = runBenchmark(B, Base);
    Row.PeakRssKb = peakRssKb();
    AnalyzerOptions Cap5 = Base;
    Cap5.OrCap = 5;
    Row.Cap5 = runBenchmark(B, Cap5);
    AnalyzerOptions Cap2 = Base;
    Cap2.OrCap = 2;
    Row.Cap2 = runBenchmark(B, Cap2);
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

void printTable3(const std::vector<Table3Row> &Rows) {
  printHeaderBlock("Table 3", "computation results (type-graph domain)");
  std::printf("%-4s | %s\n", "", perfTableHeader().c_str());
  for (const Table3Row &Row : Rows) {
    std::printf("ours | %s\n",
                formatPerfRow(Row.Key, Row.Base.Stats.SolveSeconds,
                              Row.Base.Stats.ProcedureIterations,
                              Row.Base.Stats.ClauseIterations,
                              Row.Cap5.Stats.SolveSeconds,
                              Row.Cap2.Stats.SolveSeconds)
                    .c_str());
    if (const PaperTable3Row *P = paperTable3(Row.Key))
      std::printf("papr | %s\n",
                  formatPerfRow(Row.Key, P->Cpu, P->ProcIters,
                                P->ClauseIters, P->Cpu5, P->Cpu2)
                      .c_str());
    std::fflush(stdout);
  }
  std::printf("\n");

  std::printf("--- hash-consing / op-cache layer (uncapped runs) ---\n");
  std::printf("Program   opHit%%      hits    misses   graphs  "
              "lookups  skipped   rss(KiB)\n");
  for (const Table3Row &Row : Rows) {
    const EngineStats &S = Row.Base.Stats;
    std::printf("%-8s %6.1f %9llu %9llu %8llu %8llu %8llu %10ld\n",
                Row.Key.c_str(), 100.0 * cacheHitRate(Row.Base),
                static_cast<unsigned long long>(S.OpCacheHits),
                static_cast<unsigned long long>(S.OpCacheMisses),
                static_cast<unsigned long long>(S.InternedGraphs),
                static_cast<unsigned long long>(S.EntryLookups),
                static_cast<unsigned long long>(S.RecomputesSkipped),
                Row.PeakRssKb);
  }
  std::printf("\n");
}

/// Writes the machine-readable snapshot CI tracks over time. Returns
/// false (and the harness exits non-zero) when the file cannot be
/// written, so CI fails at the bench step instead of two steps later at
/// the artifact upload.
bool writeJson(const std::vector<Table3Row> &Rows, bool PerProgramRss,
               const char *Path) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Path);
    return false;
  }
  double Total = 0, Total5 = 0, Total2 = 0;
  for (const Table3Row &Row : Rows) {
    Total += Row.Base.Stats.SolveSeconds;
    Total5 += Row.Cap5.Stats.SolveSeconds;
    Total2 += Row.Cap2.Stats.SolveSeconds;
  }
  std::fprintf(F, "{\n  \"programs\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Table3Row &Row = Rows[I];
    const EngineStats &S = Row.Base.Stats;
    const WideningStats &W = Row.Base.WStats;
    std::fprintf(
        F,
        "    {\"key\": \"%s\", \"solve_seconds\": %.6f, "
        "\"proc_iterations\": %llu, \"clause_iterations\": %llu, "
        "\"solve_seconds_cap5\": %.6f, \"solve_seconds_cap2\": %.6f, "
        "\"op_cache_hits\": %llu, \"op_cache_misses\": %llu, "
        "\"op_cache_hit_rate\": %.4f, \"interned_graphs\": %llu, "
        "\"entry_lookups\": %llu, \"entry_compares\": %llu, "
        "\"recomputes_skipped\": %llu, \"peak_rss_kb\": %ld, "
        "\"widen_invocations\": %llu, \"widen_cache_hits\": %llu, "
        "\"widen_clash_walks\": %llu, \"widen_clashes\": %llu, "
        "\"widen_cycle_introductions\": %llu, \"widen_replacements\": %llu, "
        "\"widen_incremental_skips\": %llu, "
        "\"widen_budget_exhaustions\": %llu, \"pf_set_hit_rate\": %.4f, "
        "\"converged\": %s}%s\n",
        Row.Key.c_str(), S.SolveSeconds,
        static_cast<unsigned long long>(S.ProcedureIterations),
        static_cast<unsigned long long>(S.ClauseIterations),
        Row.Cap5.Stats.SolveSeconds, Row.Cap2.Stats.SolveSeconds,
        static_cast<unsigned long long>(S.OpCacheHits),
        static_cast<unsigned long long>(S.OpCacheMisses),
        cacheHitRate(Row.Base),
        static_cast<unsigned long long>(S.InternedGraphs),
        static_cast<unsigned long long>(S.EntryLookups),
        static_cast<unsigned long long>(S.EntryCompares),
        static_cast<unsigned long long>(S.RecomputesSkipped),
        Row.PeakRssKb,
        static_cast<unsigned long long>(W.Invocations),
        static_cast<unsigned long long>(W.CacheHits),
        static_cast<unsigned long long>(W.ClashWalks),
        static_cast<unsigned long long>(W.Clashes),
        static_cast<unsigned long long>(W.CycleIntroductions),
        static_cast<unsigned long long>(W.Replacements),
        static_cast<unsigned long long>(W.IncrementalSkips),
        static_cast<unsigned long long>(W.BudgetExhaustions),
        S.pfSetHitRate(), Row.Base.Converged ? "true" : "false",
        I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F,
               "  ],\n  \"total_solve_seconds\": %.6f,\n"
               "  \"total_solve_seconds_cap5\": %.6f,\n"
               "  \"total_solve_seconds_cap2\": %.6f,\n"
               "  \"peak_rss_per_program\": %s\n}\n",
               Total, Total5, Total2, PerProgramRss ? "true" : "false");
  std::fclose(F);
  std::printf("wrote %s (total %.3fs, cap5 %.3fs, cap2 %.3fs)\n\n", Path,
              Total, Total5, Total2);
  return true;
}

void BM_Analyze(benchmark::State &State, const std::string &Key) {
  const BenchmarkProgram *B = findBenchmark(Key);
  for (auto _ : State) {
    AnalysisResult R = analyzeProgram(B->Source, B->GoalSpec);
    benchmark::DoNotOptimize(R.QuerySucceeds);
  }
}

} // namespace

int main(int argc, char **argv) {
  bool PerProgramRss = false;
  std::vector<Table3Row> Rows = runTable3(PerProgramRss);
  printTable3(Rows);
  if (!PerProgramRss)
    std::printf("note: peak-RSS watermark reset unavailable; rss column "
                "is the monotone process-wide maximum\n\n");
  const char *JsonPath = std::getenv("BENCH_TABLE3_JSON");
  if (!JsonPath)
    JsonPath = "BENCH_table3.json";
  if (*JsonPath && !writeJson(Rows, PerProgramRss, JsonPath))
    return 1;
  // Register timing loops only for the fast programs; the slow ones are
  // covered by the table above.
  for (const char *Key : {"QU", "PG", "PL", "BR", "CS", "PE", "KA"})
    benchmark::RegisterBenchmark((std::string("BM_Analyze/") + Key).c_str(),
                                 BM_Analyze, std::string(Key));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
